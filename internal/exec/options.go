package exec

import (
	"context"

	"timber/internal/match"
	"timber/internal/obs"
	"timber/internal/par"
)

// Options carries the run-time knobs of one execution: how wide the
// worker pools fan out, whether the run is traced, and the context
// that can cancel it. The zero value is a valid default — every core,
// untraced, never cancelled. Options deliberately lives outside Spec:
// a Spec describes *what* the query computes (and is cached by the
// engine's plan cache), while Options describes *how one run* of it
// behaves.
type Options struct {
	// Parallelism bounds the worker pools the executors use for their
	// hot phases (witness value population, output materialization,
	// per-document structural joins). 0 means GOMAXPROCS; 1 forces the
	// sequential path. Any setting produces byte-identical results —
	// partial results merge in document order.
	Parallelism int
	// Tracer, when non-nil, records one span per operator phase of the
	// execution (EXPLAIN ANALYZE style). Executors create and end spans
	// only on the orchestrating goroutine — worker pools never touch
	// the tracer — and a nil Tracer reduces every span operation to a
	// nil check, so results are byte-identical with tracing on or off.
	Tracer *obs.Tracer
	// Ctx, when non-nil, cancels the execution: executors check it at
	// phase boundaries and inside their record-fetch loops (including
	// mid-chunk inside worker pools), so a timed-out query stops
	// issuing buffer-pool fetches promptly. A cancelled run returns
	// ctx.Err() and no result. Nil means "never cancelled".
	Ctx context.Context
	// BatchSize is the rows-per-batch capacity of the streaming
	// executor's identifier batches. 0 means the package default (256).
	// Any setting produces byte-identical results — batch boundaries
	// never change row order.
	BatchSize int
	// SortMemRows bounds the streaming GROUPBY sort's in-memory buffer:
	// when more rows than this accumulate, the buffer is sorted and
	// spilled as a run through the storage spool (temporary pages that
	// compete with base data in the buffer pool), and the output is a
	// k-way merge over the runs. 0 means never spill. Any setting
	// produces byte-identical results — the sort comparator is a total
	// order.
	SortMemRows int
	// MaxMaterializeBytes, when positive, caps the bytes of output
	// content the late-materialize sink may fetch; a run that exceeds
	// it fails with ErrMaterializeLimit and returns no partial output.
	// 0 means unlimited.
	MaxMaterializeBytes int64
	// Metrics, when non-nil, receives always-on cumulative telemetry:
	// each operator phase's wall time folds into the registry's
	// exec_operator_seconds{op=...} histograms after the run. Unlike
	// Tracer — which snapshots the shared storage counters and is only
	// exact on solo runs — Metrics records wall time alone through
	// lock-free histogram adds, so it stays correct under concurrent
	// executions and never changes results. When the caller supplies
	// its own Tracer, it owns Finish and any folding; otherwise the
	// run creates a private wall-clock-only tracer to collect spans.
	Metrics *obs.Registry
	// Matcher selects the pattern-matching algorithm the physical
	// plan's indexed leaf selections run (match.MatcherBinary cascaded
	// structural joins, match.MatcherTwig holistic twig join). The zero
	// value, match.MatcherAuto, resolves structurally at this level —
	// holistic when every pattern node is tagged — while the engine
	// resolves it through the cost-based planner before calling down.
	// Any setting produces byte-identical results; only the index access
	// pattern changes. Spec-level strategies do their own scans and
	// ignore it.
	Matcher match.MatcherKind
	// Journal, when non-nil, receives the run's finished span tree in
	// its flight recorder, keyed by the query ID in Ctx — the per-query
	// trace survives the request so /debug/flight can replay it. Like
	// Metrics this only applies when the run owns its tracer (a
	// caller-supplied Tracer stays the caller's to finish and record);
	// a nil Journal costs one nil check. Never changes results.
	Journal *obs.Journal
}

// foldSpans arranges for the run's operator spans to fold into
// o.Metrics and hand off to o.Journal's flight recorder. When the
// caller did not attach a tracer it installs a private wall-clock-only
// one (counter snapshots would be wrong under concurrency) and returns
// the new options plus a finish func for the caller to defer; with
// neither Metrics nor Journal, or a caller-owned tracer, it returns o
// unchanged and a no-op.
func (o Options) foldSpans(root string) (Options, func()) {
	if (o.Metrics == nil && o.Journal == nil) || o.Tracer != nil {
		return o, func() {}
	}
	t := obs.New(root, nil)
	o.Tracer = t
	reg, j, ctx := o.Metrics, o.Journal, o.Ctx
	return o, func() {
		d := t.Finish()
		if reg != nil {
			obs.RecordTree(reg, d)
		}
		if j != nil {
			qid := ""
			if ctx != nil {
				qid = obs.QueryIDFrom(ctx)
			}
			j.RecordFlightTrace(qid, d)
		}
	}
}

// trace starts a top-level executor span (no-op when untraced).
func (o Options) trace(name string) *obs.Span { return o.Tracer.Start(name) }

// workers resolves the parallelism knob to a worker count.
func (o Options) workers() int { return par.Workers(o.Parallelism) }

// err reports the options context's cancellation state without
// blocking; a nil context never cancels.
func (o Options) err() error { return ctxErr(o.Ctx) }

// ctxErr is the non-blocking cancellation probe the sequential hot
// loops use between record fetches.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
