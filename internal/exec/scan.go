package exec

import (
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// scanIter is the streaming leaf of a fragment's pipeline: it pulls
// one document's postings for a tag from a TagCursor and emits them as
// binding rows with Member == Aux (the path position starts at the
// member itself). An early-terminating consumer never reads the rest
// of the posting list.
type scanIter struct {
	db     storage.Reader
	tag    string
	doc    xmltree.DocID
	counts *opCounts

	cur    *storage.TagCursor
	opened bool
}

func newScan(db storage.Reader, tag string, doc xmltree.DocID, counts *opCounts) *scanIter {
	return &scanIter{db: db, tag: tag, doc: doc, counts: counts}
}

func (s *scanIter) Open() error {
	if s.opened {
		return nil
	}
	s.opened = true
	s.cur = s.db.OpenTagDocCursor(s.tag, s.doc)
	return nil
}

func (s *scanIter) Next(b *Batch) error {
	b.Reset()
	for !b.full() {
		p, ok := s.cur.Next()
		if !ok {
			if err := s.cur.Err(); err != nil {
				return err
			}
			break
		}
		b.Rows = append(b.Rows, Row{Member: p, Aux: p, HasAux: true})
	}
	s.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		s.counts.batch()
	}
	return nil
}

func (s *scanIter) Close() error {
	if s.cur == nil {
		return nil
	}
	return s.cur.Close()
}

// sliceSource replays an already-scanned posting list as binding rows.
// A fragment scans its member postings once and feeds them to the
// join-path, value-path and order-path pipelines through replays, so
// the member scan costs one index pass however many pipelines consume
// it (matching the materializing executor's single TagPostings call).
type sliceSource struct {
	postings []storage.Posting
	pos      int
}

func newSliceSource(postings []storage.Posting) *sliceSource {
	return &sliceSource{postings: postings}
}

func (s *sliceSource) Open() error { return nil }

func (s *sliceSource) Next(b *Batch) error {
	b.Reset()
	for !b.full() && s.pos < len(s.postings) {
		p := s.postings[s.pos]
		s.pos++
		b.Rows = append(b.Rows, Row{Member: p, Aux: p, HasAux: true})
	}
	return nil
}

func (s *sliceSource) Close() error { return nil }
