package exec

import (
	"fmt"

	"timber/internal/match"
	"timber/internal/par"
	"timber/internal/pattern"
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

// ExecPhysical evaluates ANY logical plan against the database with
// index-accelerated leaves: every selection applied directly to the
// database is answered by the index matcher (Sec. 5.2) and materializes
// only its witnesses — the bound nodes, plus full subtrees for adorned
// labels — instead of loading the documents wholesale. The remaining
// operators then run with the reference semantics over the (much
// smaller) intermediate collections.
//
// Plans that consume the database other than through a leaf selection
// (the naive plan's join does) fall back to materializing the documents
// for that leaf, which is correct but unindexed; the specialized
// Spec executors in this package (dispatched through Run) are the
// measured physical plans for the paper's query family, while
// ExecPhysical is the general-purpose path that keeps arbitrary
// translatable queries off the full-scan route.
//
// Options carries the run-time knobs: o.Parallelism bounds the
// index-matching and witness-materialization pools (results are
// identical for any setting), o.Tracer records per-phase spans (each
// indexed leaf selection gets a pattern-match span and a witness-
// materialization span, the residual logical evaluation its own), and
// o.Ctx cancels the run between leaves and inside the match/
// materialization pools.
func ExecPhysical(db storage.Reader, op plan.Op, o Options) (tax.Collection, error) {
	o, fold := o.foldSpans("exec: physical")
	defer fold()
	db, release := storage.Pin(db)
	defer release()
	rewritten, err := substituteLeaves(db, op, o)
	if err != nil {
		return tax.Collection{}, err
	}
	if err := o.err(); err != nil {
		return tax.Collection{}, err
	}
	evalSp := o.Tracer.Start("eval: logical operators")
	defer evalSp.End()
	return plan.Eval(tax.Collection{}, rewritten)
}

// substituteLeaves replaces Select-over-DBScan nodes with Literal
// collections computed from the indices, and any remaining DBScan with
// the materialized documents. Shared sub-plans (the rewrite's common
// GroupBy) stay shared: substitution is memoized per input operator.
func substituteLeaves(db storage.Reader, op plan.Op, o Options) (plan.Op, error) {
	return (&substituter{db: db, o: o, memo: map[plan.Op]plan.Op{}}).sub(op)
}

type substituter struct {
	db   storage.Reader
	o    Options
	memo map[plan.Op]plan.Op
}

func (s *substituter) sub(op plan.Op) (plan.Op, error) {
	if out, ok := s.memo[op]; ok {
		return out, nil
	}
	out, err := s.subUncached(op)
	if err != nil {
		return nil, err
	}
	s.memo[op] = out
	return out, nil
}

func (s *substituter) subUncached(op plan.Op) (plan.Op, error) {
	db := s.db
	switch o := op.(type) {
	case *plan.Select:
		if _, ok := o.In.(*plan.DBScan); ok {
			c, err := physSelect(db, o.Pattern, o.SL, s.o)
			if err != nil {
				return nil, err
			}
			return &plan.Literal{C: c}, nil
		}
		in, err := s.sub(o.In)
		if err != nil {
			return nil, err
		}
		return &plan.Select{In: in, Pattern: o.Pattern, SL: o.SL}, nil
	case *plan.DBScan:
		scanSp := s.o.Tracer.Start("scan: full database")
		c, err := LoadCollection(db)
		scanSp.End()
		if err != nil {
			return nil, err
		}
		return &plan.Literal{C: c}, nil
	case *plan.Project:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.Project{In: in, Pattern: o.Pattern, PL: o.PL}
		})
	case *plan.ProjectPerTree:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.ProjectPerTree{In: in, Pattern: o.Pattern, PL: o.PL}
		})
	case *plan.DupElimContent:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.DupElimContent{In: in, Pattern: o.Pattern, Label: o.Label}
		})
	case *plan.DedupChildren:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.DedupChildren{In: in}
		})
	case *plan.SortChildrenByPath:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.SortChildrenByPath{In: in, Path: o.Path, Desc: o.Desc}
		})
	case *plan.GroupBy:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.GroupBy{In: in, Pattern: o.Pattern, Basis: o.Basis, Ordering: o.Ordering}
		})
	case *plan.Aggregate:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.Aggregate{In: in, Pattern: o.Pattern, Spec: o.Spec}
		})
	case *plan.Rename:
		return s.rebuild1(o.In, func(in plan.Op) plan.Op {
			return &plan.Rename{In: in, NewTag: o.NewTag}
		})
	case *plan.LeftOuterJoin:
		left, err := s.sub(o.Left)
		if err != nil {
			return nil, err
		}
		right, err := s.sub(o.Right)
		if err != nil {
			return nil, err
		}
		return &plan.LeftOuterJoin{Left: left, Right: right, Spec: o.Spec}, nil
	case *plan.Stitch:
		out := &plan.Stitch{Tag: o.Tag}
		for _, p := range o.Parts {
			sub, err := s.sub(p.Op)
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, plan.StitchPart{Op: sub, Splice: p.Splice})
		}
		return out, nil
	case *plan.Literal:
		return o, nil
	default:
		return nil, fmt.Errorf("exec: physical evaluation of unknown operator %T", op)
	}
}

func (s *substituter) rebuild1(in plan.Op, mk func(plan.Op) plan.Op) (plan.Op, error) {
	sub, err := s.sub(in)
	if err != nil {
		return nil, err
	}
	return mk(sub), nil
}

// physSelect evaluates a selection against the stored database: the
// index matcher computes the witnesses as node identifiers, and only
// the witness nodes are materialized (adorned labels with their whole
// subtrees). Witness materialization is the record-fetch-heavy phase,
// so each binding's tree is built by whichever worker claims its slot;
// slot order preserves the sequential output exactly.
func physSelect(db storage.Reader, pt *pattern.Tree, sl []tax.Item, o Options) (tax.Collection, error) {
	starred := make(map[string]bool, len(sl))
	for _, it := range sl {
		starred[it.Label] = true
	}
	matchSp := o.Tracer.Start("match: pattern")
	bindings, _, err := match.MatchKindObs(o.Ctx, db, pt, o.Matcher, o.Parallelism, matchSp)
	matchSp.End()
	if err != nil {
		return tax.Collection{}, err
	}
	var out tax.Collection
	if len(bindings) > 0 {
		matSp := o.Tracer.Start("materialize: witnesses")
		trees := make([]*xmltree.Node, len(bindings))
		if err := par.Do(o.Ctx, len(bindings), o.workers(), func(i int) error {
			tree, err := materializeWitness(db, pt.Root, bindings[i], starred)
			if err != nil {
				return err
			}
			trees[i] = tree
			return nil
		}); err != nil {
			matSp.End()
			return tax.Collection{}, err
		}
		out.Trees = trees
		matSp.Add("witnesses", int64(len(trees)))
		matSp.End()
	}
	out.Renumber()
	return out, nil
}

// materializeWitness builds the witness tree for one binding, fetching
// exactly the needed records.
func materializeWitness(db storage.Reader, pn *pattern.Node, b match.DBBinding, starred map[string]bool) (*xmltree.Node, error) {
	post := b[pn.Label]
	if starred[pn.Label] {
		return db.GetSubtree(post.ID())
	}
	rec, err := db.GetNodeAt(post.RID)
	if err != nil {
		return nil, err
	}
	n := &xmltree.Node{Tag: rec.Tag, Content: rec.Content, Attrs: rec.Attrs, Interval: rec.Interval}
	for _, pc := range pn.Children {
		child, err := materializeWitness(db, pc, b, starred)
		if err != nil {
			return nil, err
		}
		n.Append(child)
	}
	return n, nil
}
