package exec

import (
	"strings"

	"timber/internal/xmltree"
)

// PathStep is one step of a member-relative path: an element name plus
// the axis reaching it (child for /, descendant for //).
type PathStep struct {
	Tag        string
	Descendant bool
}

// Path is a member-relative location path. The physical plans evaluate
// paths with the same semantics as the pattern edges they came from:
// child steps require immediate containment, descendant steps any
// proper nesting.
type Path []PathStep

// ChildPath builds an all-child-steps path from tags; the common case.
func ChildPath(tags ...string) Path {
	p := make(Path, len(tags))
	for i, t := range tags {
		p[i] = PathStep{Tag: t}
	}
	return p
}

// Tags returns the element names of the steps.
func (p Path) Tags() []string {
	out := make([]string, len(p))
	for i, s := range p {
		out[i] = s.Tag
	}
	return out
}

// LastTag returns the final step's element name.
func (p Path) LastTag() string { return p[len(p)-1].Tag }

func (p Path) String() string {
	var b strings.Builder
	for _, s := range p {
		if s.Descendant {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(s.Tag)
	}
	return b.String()
}

// valuesAtPath walks a materialized subtree along the path and returns
// the leaf contents in document order.
func valuesAtPath(root *xmltree.Node, path Path) []string {
	cur := []*xmltree.Node{root}
	for _, st := range path {
		var next []*xmltree.Node
		for _, n := range cur {
			if st.Descendant {
				for _, c := range n.Children {
					c.Walk(func(m *xmltree.Node) bool {
						if m.Tag == st.Tag {
							next = append(next, m)
						}
						return true
					})
				}
			} else {
				next = append(next, n.ChildrenTagged(st.Tag)...)
			}
		}
		cur = next
	}
	out := make([]string, len(cur))
	for i, n := range cur {
		out[i] = n.Content
	}
	return out
}
