package exec

import (
	"context"

	"timber/internal/par"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// opSet is an ordered, name-keyed collection of operator counters. Each
// exchange fragment builds a private set (its operators increment plain
// fields, race-free); after the worker barrier the fragment sets merge
// into the driver's set in document order, so the aggregated counts are
// identical for any parallelism.
type opSet struct {
	order []string
	m     map[string]*opCounts
}

func newOpSet() *opSet { return &opSet{m: map[string]*opCounts{}} }

func (s *opSet) get(name string) *opCounts {
	if c, ok := s.m[name]; ok {
		return c
	}
	c := &opCounts{name: name}
	s.m[name] = c
	s.order = append(s.order, name)
	return c
}

func (s *opSet) merge(o *opSet) {
	for _, name := range o.order {
		s.get(name).add(o.m[name])
	}
}

func (s *opSet) all() []*opCounts {
	out := make([]*opCounts, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.m[name])
	}
	return out
}

// fragResult is one document's match output: the joined witness/value
// rows in document order, the document's ordering values, the
// fragment's stats contribution and its operator counters.
type fragResult struct {
	rows  []Row
	ord   map[xmltree.NodeID]string
	stats ExecStats
	ops   *opSet
}

// exchangeIter parallelizes the match phase: the member posting list is
// scanned once (a single index pass, independent of the worker count),
// partitioned by document, and each document's fragment pipeline —
// selection steps, grouping-value projection, value-path selection and
// the merge left-outer-join — runs on a worker-pool slot. Fragment
// outputs land in pre-assigned slots and are concatenated in document
// order, so the merged stream is byte-identical for any parallelism:
// the exchange only reorders work, never rows.
type exchangeIter struct {
	db        storage.Reader
	spec      Spec
	ctx       context.Context
	workers   int
	batchSize int
	ops       *opSet
	counts    *opCounts

	opened bool
	rows   []Row
	pos    int
	ord    map[xmltree.NodeID]string
	stats  ExecStats
}

func newExchange(db storage.Reader, spec Spec, ctx context.Context, workers, batchSize int, ops *opSet) *exchangeIter {
	return &exchangeIter{
		db:        db,
		spec:      spec,
		ctx:       ctx,
		workers:   workers,
		batchSize: batchSize,
		ops:       ops,
		counts:    ops.get("exchange: merge fragments"),
	}
}

func (e *exchangeIter) Open() error {
	if e.opened {
		return nil
	}
	e.opened = true

	// One sequential pass over the member posting list; the fragments
	// replay slices of it, so the scan cost matches the materializing
	// executor's single TagPostings call.
	scanCounts := e.ops.get("scan: member postings")
	cur := e.db.OpenTagCursor(e.spec.MemberTag)
	var members []storage.Posting
	for {
		p, ok := cur.Next()
		if !ok {
			break
		}
		members = append(members, p)
	}
	err := cur.Err()
	if cerr := cur.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	scanCounts.out(len(members))
	if len(members) > 0 {
		scanCounts.batch()
	}
	e.stats.IndexPostings += len(members)

	// Partition by document; the cursor returns key order, so postings
	// of one document are contiguous and documents ascend.
	type docPart struct {
		doc xmltree.DocID
		ps  []storage.Posting
	}
	var parts []docPart
	for i := 0; i < len(members); {
		j := i
		doc := members[i].Interval.Doc
		for j < len(members) && members[j].Interval.Doc == doc {
			j++
		}
		parts = append(parts, docPart{doc: doc, ps: members[i:j]})
		i = j
	}

	frs := make([]*fragResult, len(parts))
	if err := par.Do(e.ctx, len(parts), e.workers, func(i int) error {
		fr, err := runFragment(e.db, e.spec, parts[i].doc, parts[i].ps, e.batchSize)
		if err != nil {
			return err
		}
		frs[i] = fr
		return nil
	}); err != nil {
		return err
	}

	for _, fr := range frs {
		e.rows = append(e.rows, fr.rows...)
		e.stats.IndexPostings += fr.stats.IndexPostings
		e.stats.ValueLookups += fr.stats.ValueLookups
		if fr.ord != nil {
			if e.ord == nil {
				e.ord = make(map[xmltree.NodeID]string, len(fr.ord))
			}
			for k, v := range fr.ord {
				e.ord[k] = v
			}
		}
		e.ops.merge(fr.ops)
	}
	e.counts.in(len(e.rows))
	return nil
}

func (e *exchangeIter) Next(b *Batch) error {
	b.Reset()
	for !b.full() && e.pos < len(e.rows) {
		b.Rows = append(b.Rows, e.rows[e.pos])
		e.pos++
	}
	e.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		e.counts.batch()
	}
	return nil
}

func (e *exchangeIter) Close() error {
	e.rows = nil
	return nil
}

// runFragment evaluates one document's match pipeline to completion:
//
//	sliceSource(members) → stepIter* (join path) → populate (grouping
//	values) ── left ─┐
//	sliceSource(members) → stepIter* (value path) ── right ─┤→ mergeLOJ
//
// plus, when ordering is requested, a third replay through the order
// path, duplicate elimination (first match per member) and projection
// into the fragment's ordering-value map. All iterators are closed
// before returning, so a fragment never holds cursors across the
// exchange barrier.
func runFragment(db storage.Reader, spec Spec, doc xmltree.DocID, members []storage.Posting, batchSize int) (*fragResult, error) {
	ops := newOpSet()
	fr := &fragResult{ops: ops}

	var left Iterator = newSliceSource(members)
	for _, st := range spec.JoinPath {
		left = newStep(left, db, st, doc, batchSize, ops.get("select: join "+st.Tag))
	}
	popCounts := ops.get("populate: grouping values")
	pop := newPopulate(left, db, popCounts)
	var right Iterator = newSliceSource(members)
	for _, st := range spec.ValuePath {
		right = newStep(right, db, st, doc, batchSize, ops.get("select: value "+st.Tag))
	}
	loj := newMergeLOJ(pop, right, batchSize, ops.get("mergejoin: values"))

	err := func() error {
		if err := loj.Open(); err != nil {
			return err
		}
		b := getBatch(batchSize)
		defer putBatch(b)
		for {
			if err := loj.Next(b); err != nil {
				return err
			}
			if len(b.Rows) == 0 {
				return nil
			}
			fr.rows = append(fr.rows, b.Rows...)
		}
	}()
	if cerr := loj.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	// Witnesses and value pairs are index postings; the populated
	// grouping values are the early value look-ups Sec. 5.3 allows.
	fr.stats.IndexPostings += int(popCounts.rowsOut) + int(loj.rightRows)
	fr.stats.ValueLookups += int(popCounts.rowsOut)

	if spec.OrderPath != nil {
		var oit Iterator = newSliceSource(members)
		for _, st := range spec.OrderPath {
			oit = newStep(oit, db, st, doc, batchSize, ops.get("select: order "+st.Tag))
		}
		deCounts := ops.get("dupelim: order matches")
		ordPopCounts := ops.get("populate: ordering values")
		opp := newPopulate(newDupElim(oit, deCounts), db, ordPopCounts)
		fr.ord = map[xmltree.NodeID]string{}
		err = func() error {
			if err := opp.Open(); err != nil {
				return err
			}
			b := getBatch(batchSize)
			defer putBatch(b)
			for {
				if err := opp.Next(b); err != nil {
					return err
				}
				if len(b.Rows) == 0 {
					return nil
				}
				for _, r := range b.Rows {
					fr.ord[r.Member.ID()] = r.Key
				}
			}
		}()
		if cerr := opp.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		fr.stats.IndexPostings += int(deCounts.rowsIn)
		fr.stats.ValueLookups += int(ordPopCounts.rowsOut)
	}
	return fr, nil
}
