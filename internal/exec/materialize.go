package exec

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

// ErrMaterializeLimit reports that the late-materialization sink's
// memory budget (Options.MaxMaterializeBytes) was exceeded. The run
// returns this error and no result — never a partial one.
var ErrMaterializeLimit = errors.New("exec: materialization buffer limit exceeded")

// sink is the late-materialize sink — the only place of the streaming
// groupby pipeline that reads output value content. It consumes the
// shaped stream (group boundaries, binding rows, count rows) and builds
// the output trees; in Titles mode each batch's surviving value
// identifiers are fetched together through the batched
// late-materialization API, in Count mode counts come from the
// aggregate rows and no value content is ever touched.
type sink struct {
	db    storage.Reader
	spec  Spec
	ctx   context.Context
	limit int64

	trees []*xmltree.Node
	cur   *xmltree.Node
	looks int
	bytes int64

	// per-batch fetch staging
	targets []*xmltree.Node
	ps      []storage.Posting
	vals    []string
}

func newSink(db storage.Reader, spec Spec, ctx context.Context, limit int64) *sink {
	return &sink{db: db, spec: spec, ctx: ctx, limit: limit}
}

// drain pulls the stream to exhaustion, building the output trees.
func (s *sink) drain(top Iterator, batchSize int) error {
	if err := top.Open(); err != nil {
		return err
	}
	b := getBatch(batchSize)
	defer putBatch(b)
	basisTag := s.spec.BasisTag()
	valueTag := s.spec.ValuePath.LastTag()
	for {
		if err := ctxErr(s.ctx); err != nil {
			return err
		}
		if err := top.Next(b); err != nil {
			return err
		}
		if len(b.Rows) == 0 {
			return nil
		}
		s.targets = s.targets[:0]
		s.ps = s.ps[:0]
		for _, r := range b.Rows {
			switch r.Kind {
			case rowGroup:
				s.cur = xmltree.E(s.spec.OutTag, xmltree.Elem(basisTag, r.Key))
				s.trees = append(s.trees, s.cur)
				if err := s.charge(int64(len(r.Key))); err != nil {
					return err
				}
			case rowCount:
				s.cur.Append(xmltree.Elem("count", strconv.FormatInt(r.Ord, 10)))
			default:
				if s.spec.Mode != Titles || !r.HasAux {
					continue
				}
				// Stage the fetch; append a placeholder child now so the
				// value lands in stream order after the batch fetch.
				ph := xmltree.Elem(valueTag, "")
				s.cur.Append(ph)
				s.targets = append(s.targets, ph)
				s.ps = append(s.ps, r.Aux)
			}
		}
		if len(s.ps) > 0 {
			if cap(s.vals) < len(s.ps) {
				s.vals = make([]string, len(s.ps))
			}
			s.vals = s.vals[:len(s.ps)]
			if err := s.db.ContentsBatch(s.ps, s.vals); err != nil {
				return err
			}
			for i, t := range s.targets {
				t.Content = s.vals[i]
				if err := s.charge(int64(len(s.vals[i]))); err != nil {
					return err
				}
			}
			s.looks += len(s.ps)
		}
	}
}

// charge accounts n bytes of materialized content against the budget.
func (s *sink) charge(n int64) error {
	if s.limit <= 0 {
		return nil
	}
	s.bytes += n
	if s.bytes > s.limit {
		return fmt.Errorf("%w: %d bytes of output content exceed the %d-byte budget", ErrMaterializeLimit, s.bytes, s.limit)
	}
	return nil
}
