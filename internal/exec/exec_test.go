package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"timber/internal/opt"
	"timber/internal/paperdata"
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

const query1Src = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

const queryCountSrc = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {count($t)}
</authorpubs>`

func plansFor(t *testing.T, src string) (naive, rewritten plan.Op, spec Spec) {
	t.Helper()
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	rewritten, applied, err := opt.Rewrite(naive)
	if err != nil || !applied {
		t.Fatalf("rewrite: applied=%v err=%v", applied, err)
	}
	spec, err = SpecFromPlan(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	return naive, rewritten, spec
}

func sampleDB(t *testing.T) *storage.DB {
	t.Helper()
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	return db
}

// rows flattens result trees into comparable "author: x, y" strings.
func rows(trees []*xmltree.Node) []string {
	var out []string
	for _, tr := range trees {
		var b strings.Builder
		for i, c := range tr.Children {
			if i == 1 {
				b.WriteString(":")
			}
			if i > 1 {
				b.WriteString(",")
			}
			b.WriteString(c.Content)
		}
		out = append(out, b.String())
	}
	return out
}

func sorted(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

func TestSpecFromPlanQuery1(t *testing.T) {
	_, _, spec := plansFor(t, query1Src)
	if spec.MemberTag != "article" || spec.OutTag != "authorpubs" || spec.Mode != Titles {
		t.Errorf("spec = %+v", spec)
	}
	if !reflect.DeepEqual(spec.JoinPath, ChildPath("author")) {
		t.Errorf("join path = %v", spec.JoinPath)
	}
	if !reflect.DeepEqual(spec.ValuePath, ChildPath("title")) {
		t.Errorf("value path = %v", spec.ValuePath)
	}
	if spec.BasisTag() != "author" {
		t.Errorf("basis = %s", spec.BasisTag())
	}
	if !strings.Contains(spec.String(), "article") {
		t.Error("spec string")
	}
}

func TestSpecFromPlanCount(t *testing.T) {
	_, _, spec := plansFor(t, queryCountSrc)
	if spec.Mode != Count {
		t.Errorf("mode = %v", spec.Mode)
	}
}

func TestSpecFromPlanRejectsNaive(t *testing.T) {
	naive, _, _ := plansFor(t, query1Src)
	if _, err := SpecFromPlan(naive); err == nil {
		t.Error("naive plan (no GroupBy) should be rejected")
	}
	if _, err := SpecFromPlan(&plan.DBScan{}); err == nil {
		t.Error("non-stitch should be rejected")
	}
}

// wantSample is Query 1's answer on the Figure 6 database.
var wantSample = []string{
	"Jack:Querying XML,XML and the Web",
	"John:Querying XML,Hack HTML",
	"Jill:XML and the Web",
}

func TestGroupByExecSample(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	res, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sec. 5.3 sorting emits groups in value order.
	want := []string{
		"Jack:Querying XML,XML and the Web",
		"Jill:XML and the Web",
		"John:Querying XML,Hack HTML",
	}
	if got := rows(res.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("groupby result = %v, want %v", got, want)
	}
	if res.Stats.Groups != 3 {
		t.Errorf("groups = %d", res.Stats.Groups)
	}
	// Titles mode fetches author values (5 witnesses) plus one title
	// per group membership (Jack×2 + John×2 + Jill×1 = 5).
	if res.Stats.ValueLookups != 5+5 {
		t.Errorf("value lookups = %d, want 10", res.Stats.ValueLookups)
	}
	if res.Stats.LocatorProbes != 0 {
		t.Errorf("groupby plan must not navigate via the locator, probes = %d", res.Stats.LocatorProbes)
	}
}

func TestGroupByExecCountIdentifierOnly(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, queryCountSrc)
	res, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Jack:2", "Jill:1", "John:2"}
	if got := rows(res.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("count result = %v, want %v", got, want)
	}
	// The count is computed without instantiating titles: only the 5
	// author values are populated.
	if res.Stats.ValueLookups != 5 {
		t.Errorf("count mode value lookups = %d, want 5", res.Stats.ValueLookups)
	}
}

func TestDirectNestedLoopsSample(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	res, err := directNestedLoops(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First-occurrence order (Jack, John, Jill).
	if got := rows(res.Trees); !reflect.DeepEqual(got, wantSample) {
		t.Errorf("direct result = %v, want %v", got, wantSample)
	}
	if res.Stats.LocatorProbes == 0 {
		t.Error("nested-loops plan should navigate via the locator")
	}
}

func TestDirectBatchSample(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, query1Src)
	res, err := directBatch(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(res.Trees); !reflect.DeepEqual(got, wantSample) {
		t.Errorf("batch result = %v, want %v", got, wantSample)
	}
}

func TestDirectCountSample(t *testing.T) {
	db := sampleDB(t)
	_, _, spec := plansFor(t, queryCountSrc)
	want := []string{"Jack:2", "John:2", "Jill:1"}
	nl, err := directNestedLoops(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(nl.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("nested-loops count = %v, want %v", got, want)
	}
	bt, err := directBatch(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(bt.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("batch count = %v, want %v", got, want)
	}
}

func TestDirectNestedLoopsNeedsValueIndex(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 64, NoValueIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.LoadDocument("d", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	_, _, spec := plansFor(t, query1Src)
	if _, err := directNestedLoops(db, spec, Options{}); err == nil {
		t.Error("nested-loops without value index should fail")
	}
}

func TestLogicalOracleAgreement(t *testing.T) {
	db := sampleDB(t)
	naive, rewritten, spec := plansFor(t, query1Src)

	logicalNaive, err := ExecLogical(db, naive)
	if err != nil {
		t.Fatal(err)
	}
	logicalGroup, err := ExecLogical(db, rewritten)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := directNestedLoops(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	group, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Direct physical = logical naive, including order.
	if !reflect.DeepEqual(rows(direct.Trees), rows(logicalNaive.Trees)) {
		t.Errorf("direct != logical naive:\n%v\n%v", rows(direct.Trees), rows(logicalNaive.Trees))
	}
	// GroupBy physical = logical rewritten, modulo group order (the
	// physical plan sorts by value; the logical operator uses
	// first-appearance order).
	if !reflect.DeepEqual(sorted(rows(group.Trees)), sorted(rows(logicalGroup.Trees))) {
		t.Errorf("groupby != logical rewritten:\n%v\n%v", rows(group.Trees), rows(logicalGroup.Trees))
	}
}

// randomBibDB loads a random bibliography into a fresh database and
// also returns the in-memory tree.
func randomBibDB(t testing.TB, rng *rand.Rand) (*storage.DB, *xmltree.Node) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	root := xmltree.E("doc_root")
	n := rng.Intn(12) + 1
	for i := 0; i < n; i++ {
		art := xmltree.E("article")
		// Distinct author values within an article (see the duplicate-
		// author caveat in package opt).
		perm := rng.Perm(6)
		for a := 0; a < rng.Intn(3)+1; a++ {
			art.Append(xmltree.Elem("author", fmt.Sprintf("A%d", perm[a])))
		}
		if rng.Intn(5) > 0 {
			art.Append(xmltree.Elem("title", fmt.Sprintf("T%d", i)))
		}
		art.Append(xmltree.Elem("year", fmt.Sprintf("%d", 1990+rng.Intn(12))))
		// A unique discriminator keeps articles structurally distinct,
		// so the naive plan's structural dedup (see
		// TestStructuralDedupCaveat) never fires on this data.
		art.Append(xmltree.Elem("ee", fmt.Sprintf("e%d", i)))
		root.Append(art)
	}
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}
	return db, root
}

// TestAllPlansAgreeProperty is the reproduction's central integration
// property: on random bibliography databases, all four evaluation
// strategies — logical naive, logical groupby, physical direct (both
// variants), physical groupby — return the same result multiset, and
// the two direct plans match the naive order exactly.
func TestAllPlansAgreeProperty(t *testing.T) {
	naive, rewritten, spec := plansFor(t, query1Src)
	naiveC, rewrittenC, specC := plansFor(t, queryCountSrc)

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, _ := randomBibDB(t, rng)
		defer db.Close()

		for _, tc := range []struct {
			naive, rewritten plan.Op
			spec             Spec
		}{
			{naive, rewritten, spec},
			{naiveC, rewrittenC, specC},
		} {
			ln, err := ExecLogical(db, tc.naive)
			if err != nil {
				return false
			}
			lg, err := ExecLogical(db, tc.rewritten)
			if err != nil {
				return false
			}
			dnl, err := directNestedLoops(db, tc.spec, Options{})
			if err != nil {
				return false
			}
			dmt, err := directMaterialized(db, tc.spec, Options{})
			if err != nil {
				return false
			}
			dbt, err := directBatch(db, tc.spec, Options{})
			if err != nil {
				return false
			}
			rep, err := groupByReplicating(db, tc.spec, Options{})
			if err != nil {
				return false
			}
			gb, err := groupByExec(db, tc.spec, Options{})
			if err != nil {
				return false
			}
			nRows := rows(ln.Trees)
			if !reflect.DeepEqual(rows(dnl.Trees), nRows) {
				return false
			}
			if !reflect.DeepEqual(rows(dmt.Trees), nRows) {
				return false
			}
			if !reflect.DeepEqual(rows(dbt.Trees), nRows) {
				return false
			}
			if !reflect.DeepEqual(sorted(rows(rep.Trees)), sorted(nRows)) {
				return false
			}
			// Groupby plans (logical and physical) agree with each
			// other and, as multisets, with the naive result for
			// authors that write articles. Authors outside articles
			// (none in this generator) are the only divergence.
			if !reflect.DeepEqual(sorted(rows(gb.Trees)), sorted(rows(lg.Trees))) {
				return false
			}
			if !reflect.DeepEqual(sorted(rows(gb.Trees)), sorted(nRows)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestInstitutionQueryPhysical runs the two-step correlation path
// (group articles by author/institution) through all executors.
func TestInstitutionQueryPhysical(t *testing.T) {
	src := `
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
  {$i}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $i = $b/author/institution
    RETURN $b/title
  }
</instpubs>`
	naive, rewritten, spec := plansFor(t, src)
	_ = naive

	db, err := storage.CreateTemp(storage.Options{PageSize: 512, PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e, el := xmltree.E, xmltree.Elem
	root := e("doc_root",
		e("article", e("author", el("institution", "UM")).Text("Jack"), el("title", "T1")),
		e("article", e("author", el("institution", "UBC")).Text("Jill"), el("title", "T2")),
		e("article", e("author", el("institution", "UM")).Text("Jag"), el("title", "T3")),
	)
	if _, err := db.LoadDocument("bib.xml", root); err != nil {
		t.Fatal(err)
	}

	gb, err := groupByExec(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"UBC:T2", "UM:T1,T3"} // sorted by institution
	if got := rows(gb.Trees); !reflect.DeepEqual(got, want) {
		t.Errorf("groupby institution = %v, want %v", got, want)
	}
	dnl, err := directNestedLoops(db, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sorted(rows(dnl.Trees)); !reflect.DeepEqual(got, want) {
		t.Errorf("direct institution = %v, want %v", got, want)
	}
	lg, err := ExecLogical(db, rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if got := sorted(rows(lg.Trees)); !reflect.DeepEqual(got, want) {
		t.Errorf("logical institution = %v, want %v", got, want)
	}
}

// TestFigures6To10WorkedExample replays the paper's Sec. 4.1 worked
// example end to end on the Figure 6 sample database: the rewritten
// plan's GroupBy input collection is the Figure 9 article collection,
// the groups are Figure 10's, and the final result matches the naive
// plan.
func TestFigures6To10WorkedExample(t *testing.T) {
	db := sampleDB(t)
	naive, rewritten, _ := plansFor(t, query1Src)

	// The rewritten plan's grouping stage input (Figure 9).
	st := rewritten.(*plan.Stitch)
	var gb *plan.GroupBy
	cur := st.Parts[0].Op
	for cur != nil {
		if g, ok := cur.(*plan.GroupBy); ok {
			gb = g
			break
		}
		ins := cur.Inputs()
		if len(ins) == 0 {
			break
		}
		cur = ins[0]
	}
	if gb == nil {
		t.Fatal("no groupby in rewritten plan")
	}
	articles, err := ExecLogical(db, gb.In)
	if err != nil {
		t.Fatal(err)
	}
	if articles.Len() != 3 {
		t.Fatalf("figure 9 collection = %d trees", articles.Len())
	}
	for _, tr := range articles.Trees {
		if tr.Tag != "article" || tr.Child("title") == nil {
			t.Errorf("figure 9 tree = %s", tr)
		}
	}

	// The intermediate grouping trees (Figure 10).
	groups, err := ExecLogical(db, gb)
	if err != nil {
		t.Fatal(err)
	}
	if groups.Len() != 3 {
		t.Fatalf("figure 10 groups = %d", groups.Len())
	}
	order := []string{"Jack", "John", "Jill"}
	for i, g := range groups.Trees {
		if got := g.Children[0].Children[0].Content; got != order[i] {
			t.Errorf("group %d = %s, want %s", i, got, order[i])
		}
	}

	// Final result equals the naive plan's.
	nOut, err := ExecLogical(db, naive)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := ExecLogical(db, rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows(nOut.Trees), rows(rOut.Trees)) {
		t.Errorf("worked example mismatch:\nnaive %v\ngroupby %v", rows(nOut.Trees), rows(rOut.Trees))
	}
}
