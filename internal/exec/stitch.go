package exec

// stitchIter is the stitching operator: it detects group boundaries in
// the sorted row stream (a run of equal grouping values is a group)
// and weaves in a rowGroup row carrying the grouping value ahead of
// each run — the skeleton of the output trees, still identifier-only.
// Binding rows pass through beneath their group row; the sink (or the
// aggregation operator, in count mode) consumes the shaped stream.
//
// Boundary rows are staged through a small queue so a batch boundary
// can fall anywhere — even between a group row and its first binding —
// without changing the emitted sequence.
type stitchIter struct {
	child  Iterator
	counts *opCounts

	opened  bool
	rdr     *rowReader
	haveKey bool
	lastKey string
	q       []Row
	qPos    int
	done    bool
}

func newStitch(child Iterator, batchSize int, counts *opCounts) *stitchIter {
	return &stitchIter{child: child, counts: counts, rdr: newRowReader(child, batchSize)}
}

func (s *stitchIter) Open() error {
	if s.opened {
		return nil
	}
	s.opened = true
	return s.child.Open()
}

func (s *stitchIter) Next(b *Batch) error {
	b.Reset()
	for !b.full() {
		if s.qPos < len(s.q) {
			n := len(s.q) - s.qPos
			if room := cap(b.Rows) - len(b.Rows); n > room {
				n = room
			}
			b.Rows = append(b.Rows, s.q[s.qPos:s.qPos+n]...)
			s.qPos += n
			continue
		}
		if s.done {
			break
		}
		span, err := s.rdr.span()
		if err != nil {
			return err
		}
		if span == nil {
			s.done = true
			break
		}
		// Weave a run of input rows straight into the output batch; the
		// queue is only for a binding whose group row took the batch's
		// last slot.
		s.q = s.q[:0]
		s.qPos = 0
		consumed := 0
		for consumed < len(span) {
			room := cap(b.Rows) - len(b.Rows)
			if room == 0 {
				break
			}
			r := span[consumed]
			if !s.haveKey || r.Key != s.lastKey {
				s.haveKey = true
				s.lastKey = r.Key
				b.Rows = append(b.Rows, Row{Kind: rowGroup, Key: r.Key})
				room--
			}
			consumed++
			if room == 0 {
				s.q = append(s.q, r)
				break
			}
			b.Rows = append(b.Rows, r)
		}
		s.counts.in(consumed)
		s.rdr.advance(consumed)
	}
	s.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		s.counts.batch()
	}
	return nil
}

func (s *stitchIter) Close() error {
	s.rdr.release()
	return s.child.Close()
}
