package exec

// stitchIter is the stitching operator: it detects group boundaries in
// the sorted row stream (a run of equal grouping values is a group)
// and weaves in a rowGroup row carrying the grouping value ahead of
// each run — the skeleton of the output trees, still identifier-only.
// Binding rows pass through beneath their group row; the sink (or the
// aggregation operator, in count mode) consumes the shaped stream.
//
// Boundary rows are staged through a small queue so a batch boundary
// can fall anywhere — even between a group row and its first binding —
// without changing the emitted sequence.
type stitchIter struct {
	child  Iterator
	counts *opCounts

	opened  bool
	rdr     *rowReader
	haveKey bool
	lastKey string
	q       []Row
	qPos    int
	done    bool
}

func newStitch(child Iterator, batchSize int, counts *opCounts) *stitchIter {
	return &stitchIter{child: child, counts: counts, rdr: newRowReader(child, batchSize)}
}

func (s *stitchIter) Open() error {
	if s.opened {
		return nil
	}
	s.opened = true
	return s.child.Open()
}

func (s *stitchIter) Next(b *Batch) error {
	b.Reset()
	for !b.full() {
		if s.qPos < len(s.q) {
			b.Rows = append(b.Rows, s.q[s.qPos])
			s.qPos++
			continue
		}
		if s.done {
			break
		}
		s.q = s.q[:0]
		s.qPos = 0
		r, ok, err := s.rdr.next()
		if err != nil {
			return err
		}
		if !ok {
			s.done = true
			break
		}
		s.counts.in(1)
		if !s.haveKey || r.Key != s.lastKey {
			s.haveKey = true
			s.lastKey = r.Key
			s.q = append(s.q, Row{Kind: rowGroup, Key: r.Key})
		}
		s.q = append(s.q, r)
	}
	s.counts.out(len(b.Rows))
	if len(b.Rows) > 0 {
		s.counts.batch()
	}
	return nil
}

func (s *stitchIter) Close() error { return s.child.Close() }
