package opt

import (
	"testing"

	"timber/internal/pattern"
	"timber/internal/plan"
	"timber/internal/tax"
	"timber/internal/xq"
)

// These tests exercise Phase 1's rejection branches on hand-built plans
// that are *almost* the grouping idiom.

func queryParts(t *testing.T) *plan.Stitch {
	t.Helper()
	naive, err := plan.Translate(xq.MustParse(query1Src))
	if err != nil {
		t.Fatal(err)
	}
	return naive.(*plan.Stitch)
}

func mustNotRewrite(t *testing.T, op plan.Op, why string) {
	t.Helper()
	out, applied, err := Rewrite(op)
	if err != nil {
		t.Fatalf("%s: err %v", why, err)
	}
	if applied {
		t.Errorf("%s: rewrite applied but should not", why)
	}
	if out != op {
		t.Errorf("%s: plan not returned unchanged", why)
	}
}

func TestDetectRejectsJoinOverNonDatabase(t *testing.T) {
	st := queryParts(t)
	// Point the join's right side at something other than DBScan.
	join := st.Parts[1].Op.(*plan.ProjectPerTree).In.(*plan.DedupChildren).In.(*plan.LeftOuterJoin)
	orig := join.Right
	join.Right = join.Left
	mustNotRewrite(t, st, "join right side not the database")
	join.Right = orig
}

func TestDetectRejectsDivergentJoins(t *testing.T) {
	st := queryParts(t)
	// Duplicate the titles part but give it a DIFFERENT join instance:
	// the parts no longer share one join pipeline.
	other, err := plan.Translate(xq.MustParse(query1Src))
	if err != nil {
		t.Fatal(err)
	}
	st.Parts = append(st.Parts, other.(*plan.Stitch).Parts[1])
	mustNotRewrite(t, st, "two distinct join pipelines")
}

func TestDetectRejectsForeignOuter(t *testing.T) {
	st := queryParts(t)
	// Rebuild the {$a} part over a fresh (different) outer pipeline.
	otherPlan, err := plan.Translate(xq.MustParse(query1Src))
	if err != nil {
		t.Fatal(err)
	}
	st.Parts[0] = otherPlan.(*plan.Stitch).Parts[0]
	mustNotRewrite(t, st, "basis part reads a different outer pipeline")
}

func TestDetectRejectsUnknownPartShape(t *testing.T) {
	st := queryParts(t)
	st.Parts[0] = plan.StitchPart{Op: &plan.DBScan{}}
	mustNotRewrite(t, st, "unrecognized part shape")
}

func TestDetectRejectsMultiItemSL(t *testing.T) {
	st := queryParts(t)
	join := st.Parts[1].Op.(*plan.ProjectPerTree).In.(*plan.DedupChildren).In.(*plan.LeftOuterJoin)
	join.Spec.SL = append(join.Spec.SL, tax.L("$1"))
	mustNotRewrite(t, st, "join SL with several items")
}

func TestDetectRejectsNonCountAggregate(t *testing.T) {
	naive, err := plan.Translate(xq.MustParse(queryCountSrc))
	if err != nil {
		t.Fatal(err)
	}
	st := naive.(*plan.Stitch)
	agg := st.Parts[1].Op.(*plan.ProjectPerTree).In.(*plan.Aggregate)
	agg.Spec.Fn = tax.Sum
	mustNotRewrite(t, st, "aggregate other than COUNT")
}

func TestDetectRejectsMismatchedJoinValueMapping(t *testing.T) {
	// Craft a join whose subset mapping does not send the outer bound
	// variable to the join value node: outer binds article (not
	// author), join value is the author.
	lg := func(i int) string { return []string{"$1", "$2", "$3"}[i] }
	outerRoot := pattern.NewNode(lg(0), pattern.TagEq{Tag: "doc_root"})
	outerRoot.AddChild(pattern.Descendant, pattern.NewNode(lg(1), pattern.TagEq{Tag: "article"}))
	outerPat := pattern.MustTree(outerRoot)

	innerRoot := pattern.NewNode(lg(0), pattern.TagEq{Tag: "doc_root"})
	art := innerRoot.AddChild(pattern.Descendant, pattern.NewNode(lg(1), pattern.TagEq{Tag: "article"}))
	art.AddChild(pattern.Child, pattern.NewNode(lg(2), pattern.TagEq{Tag: "author"}))
	innerPat := pattern.MustTree(innerRoot)

	sel := &plan.Select{In: &plan.DBScan{}, Pattern: outerPat, SL: []tax.Item{tax.L("$2")}}
	proj := &plan.Project{In: sel, Pattern: outerPat, PL: []tax.Item{tax.LS("$2")}}
	outer := &plan.DupElimContent{In: proj, Pattern: outerPat, Label: "$2"}
	join := &plan.LeftOuterJoin{
		Left:  outer,
		Right: &plan.DBScan{},
		Spec: tax.JoinSpec{
			LeftPattern:  outerPat,
			LeftLabel:    "$2", // bound to article
			RightPattern: innerPat,
			RightLabel:   "$3", // join value is the author
			SL:           []tax.Item{tax.LS("$2")},
		},
	}
	titlePat := func() *pattern.Tree {
		r := pattern.NewNode("$1", pattern.TagEq{Tag: tax.ProdRootTag})
		a := r.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
		a.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "title"}))
		return pattern.MustTree(r)
	}()
	st := &plan.Stitch{Tag: "x", Parts: []plan.StitchPart{
		{Op: &plan.Project{In: &plan.Select{In: outer, Pattern: outerPat, SL: []tax.Item{tax.L("$2")}}, Pattern: outerPat, PL: []tax.Item{tax.LS("$2")}}},
		{Op: &plan.ProjectPerTree{In: &plan.DedupChildren{In: join}, Pattern: titlePat, PL: []tax.Item{tax.LS("$3")}}, Splice: true},
	}}
	mustNotRewrite(t, st, "outer variable maps away from the join value")
}
