package opt

import (
	"reflect"
	"strings"
	"testing"

	"timber/internal/paperdata"
	"timber/internal/plan"
	"timber/internal/tax"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

const query1Src = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

const query2Src = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {$t}
</authorpubs>`

const queryCountSrc = `
FOR $a IN distinct-values(document("bib.xml")//author)
LET $t := document("bib.xml")//article[author = $a]/title
RETURN
<authorpubs>
  {$a} {count($t)}
</authorpubs>`

func rewriteSrc(t *testing.T, src string) (naive, rewritten plan.Op) {
	t.Helper()
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	rewritten, applied, err := Rewrite(naive)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatalf("rewrite did not apply to:\n%s", plan.Format(naive))
	}
	return naive, rewritten
}

func evalStrings(t *testing.T, op plan.Op) []string {
	t.Helper()
	base := tax.NewCollection(paperdata.SampleDatabase())
	out, err := plan.Eval(base, op)
	if err != nil {
		t.Fatal(err)
	}
	return out.Strings()
}

func TestRewriteQuery1Applies(t *testing.T) {
	_, rw := rewriteSrc(t, query1Src)
	s := plan.Format(rw)
	if !strings.Contains(s, "GroupBy") {
		t.Fatalf("rewritten plan lacks GroupBy:\n%s", s)
	}
	if strings.Contains(s, "LeftOuterJoin") {
		t.Errorf("rewritten plan still joins:\n%s", s)
	}
}

func TestRewriteQuery1SameResult(t *testing.T) {
	naive, rw := rewriteSrc(t, query1Src)
	n := evalStrings(t, naive)
	r := evalStrings(t, rw)
	if !reflect.DeepEqual(n, r) {
		t.Errorf("results differ:\nnaive %v\ngroupby %v", n, r)
	}
	want := []string{
		`authorpubs[author:"Jack" title:"Querying XML" title:"XML and the Web"]`,
		`authorpubs[author:"John" title:"Querying XML" title:"Hack HTML"]`,
		`authorpubs[author:"Jill" title:"XML and the Web"]`,
	}
	if !reflect.DeepEqual(r, want) {
		t.Errorf("groupby result = %v, want %v", r, want)
	}
}

// TestFigure11Query2SamePlan checks the Sec. 4.2 claim: after the
// rewrite optimization, the GROUPBY obtained for the nested Query 1 and
// the unnested Query 2 is identical.
func TestFigure11Query2SamePlan(t *testing.T) {
	_, rw1 := rewriteSrc(t, query1Src)
	_, rw2 := rewriteSrc(t, query2Src)
	if f1, f2 := plan.Format(rw1), plan.Format(rw2); f1 != f2 {
		t.Errorf("Query 1 and Query 2 rewrite to different plans:\n--- q1 ---\n%s--- q2 ---\n%s", f1, f2)
	}
}

func TestRewriteCountQuery(t *testing.T) {
	naive, rw := rewriteSrc(t, queryCountSrc)
	n := evalStrings(t, naive)
	r := evalStrings(t, rw)
	if !reflect.DeepEqual(n, r) {
		t.Errorf("count results differ:\nnaive %v\ngroupby %v", n, r)
	}
	want := []string{
		`authorpubs[author:"Jack" count:"2"]`,
		`authorpubs[author:"John" count:"2"]`,
		`authorpubs[author:"Jill" count:"1"]`,
	}
	if !reflect.DeepEqual(r, want) {
		t.Errorf("count result = %v, want %v", r, want)
	}
}

// TestFigure5RewriteArtifacts inspects the rewritten Query 1 plan for
// the Figure 5 structures: the initial selection pattern (5.a), the
// GROUPBY pattern and basis (5.b), and the final projection (5.d).
func TestFigure5RewriteArtifacts(t *testing.T) {
	_, rw := rewriteSrc(t, query1Src)
	st, ok := rw.(*plan.Stitch)
	if !ok || st.Tag != "authorpubs" {
		t.Fatalf("rewritten top = %T", rw)
	}
	// Both parts read the same GroupBy (evaluated once physically).
	var gb *plan.GroupBy
	for _, p := range st.Parts {
		cur := p.Op
		for cur != nil {
			if g, ok := cur.(*plan.GroupBy); ok {
				if gb == nil {
					gb = g
				} else if gb != g {
					t.Error("parts use different GroupBy instances")
				}
				break
			}
			ins := cur.Inputs()
			if len(ins) == 0 {
				break
			}
			cur = ins[0]
		}
	}
	if gb == nil {
		t.Fatal("no GroupBy found")
	}
	// Figure 5.b: article -pc-> author, basis = author's content.
	if gb.Pattern.Root.TagConstraint() != "article" {
		t.Errorf("groupby pattern root = %s", gb.Pattern.Root.TagConstraint())
	}
	au := gb.Pattern.Root.Children[0]
	if au.TagConstraint() != "author" {
		t.Errorf("groupby pattern child = %s", au.TagConstraint())
	}
	if len(gb.Basis) != 1 || gb.Basis[0].Label != au.Label {
		t.Errorf("basis = %v, want label %s", gb.Basis, au.Label)
	}
	if len(gb.Ordering) != 0 {
		t.Errorf("ordering should be empty, got %v", gb.Ordering)
	}
	// Figure 5.a upstream: Project(Select(DBScan)) binding articles.
	proj, ok := gb.In.(*plan.Project)
	if !ok {
		t.Fatalf("groupby input = %T", gb.In)
	}
	sel := proj.In.(*plan.Select)
	if _, ok := sel.In.(*plan.DBScan); !ok {
		t.Error("initial selection must scan the database")
	}
	if sel.Pattern.Root.TagConstraint() != plan.DocRootTag {
		t.Errorf("initial pattern root = %s", sel.Pattern.Root.TagConstraint())
	}
	if sel.Pattern.Root.Children[0].TagConstraint() != "article" {
		t.Errorf("initial pattern bound = %s", sel.Pattern.Root.Children[0].TagConstraint())
	}
}

func TestRewriteInstitutionQuery(t *testing.T) {
	src := `
FOR $i IN distinct-values(document("bib.xml")//institution)
RETURN
<instpubs>
  {$i}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $i = $b/author/institution
    RETURN $b/title
  }
</instpubs>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	rw, applied, err := Rewrite(naive)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("institution query should rewrite")
	}
	// Evaluate both on a database with institutions.
	e, el := xmltree.E, xmltree.Elem
	db := e("doc_root",
		e("article",
			e("author", el("name", "Jack"), el("institution", "UM")).Text("Jack"),
			el("title", "T1"),
		),
		e("article",
			e("author", el("name", "Jill"), el("institution", "UBC")).Text("Jill"),
			el("title", "T2"),
		),
		e("article",
			e("author", el("name", "Jag"), el("institution", "UM")).Text("Jag"),
			el("title", "T3"),
		),
	)
	base := tax.NewCollection(db)
	nOut, err := plan.Eval(base, naive)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := plan.Eval(base, rw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nOut.Strings(), rOut.Strings()) {
		t.Errorf("institution results differ:\nnaive %v\ngroupby %v", nOut.Strings(), rOut.Strings())
	}
	// UM gets T1 and T3; UBC gets T2.
	joined := strings.Join(rOut.Strings(), "\n")
	if !strings.Contains(joined, `title:"T1" title:"T3"`) || !strings.Contains(joined, `title:"T2"`) {
		t.Errorf("institution grouping wrong: %v", rOut.Strings())
	}
}

// TestRewriteDuplicateAuthorCaveat documents a fidelity boundary of the
// paper's rewrite: when one article carries two author sub-elements
// with the SAME value, the nested query's existential WHERE emits the
// article once, while the GROUPBY plan — per Sec. 3's "source trees
// having more than one witness tree will clearly appear more than
// once" — emits it once per witness. DBLP never repeats an author
// within an article, so the paper's evaluation is unaffected; the
// executors inherit the groupby semantics for such inputs.
func TestRewriteDuplicateAuthorCaveat(t *testing.T) {
	e, el := xmltree.E, xmltree.Elem
	db := e("doc_root",
		e("article", el("author", "A"), el("author", "A"), el("title", "T")),
	)
	naive, err := plan.Translate(xq.MustParse(query1Src))
	if err != nil {
		t.Fatal(err)
	}
	rw, applied, err := Rewrite(naive)
	if err != nil || !applied {
		t.Fatal(err)
	}
	base := tax.NewCollection(db)
	nOut, err := plan.Eval(base, naive)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := plan.Eval(base, rw)
	if err != nil {
		t.Fatal(err)
	}
	wantNaive := []string{`authorpubs[author:"A" title:"T"]`}
	wantGroup := []string{`authorpubs[author:"A" title:"T" title:"T"]`}
	if !reflect.DeepEqual(nOut.Strings(), wantNaive) {
		t.Errorf("naive = %v, want %v", nOut.Strings(), wantNaive)
	}
	if !reflect.DeepEqual(rOut.Strings(), wantGroup) {
		t.Errorf("groupby = %v, want %v (witness-per-appearance semantics)", rOut.Strings(), wantGroup)
	}
}

func TestNoRewriteWithoutJoin(t *testing.T) {
	src := `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authors>
  {$a}
</authors>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	out, applied, err := Rewrite(naive)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("join-free query must not rewrite")
	}
	if out != naive {
		t.Error("unrewritten plan should be returned unchanged")
	}
}

func TestNoRewriteWhenSubsetFails(t *testing.T) {
	// Outer binds editors; the join correlates article authors. The
	// outer pattern (doc_root//editor) is not a subset of the inner
	// (doc_root//article/author), so Phase 1 must reject.
	src := `
FOR $a IN distinct-values(document("bib.xml")//editor)
RETURN
<x>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</x>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	_, applied, err := Rewrite(naive)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("subset failure must block the rewrite")
	}
}

func TestNoRewriteWithOuterFilter(t *testing.T) {
	// An outer WHERE strengthens the outer pattern with a content
	// predicate the inner pattern lacks, so Phase 1's subset test must
	// decline — the filtered query stays on the naive plan.
	src := `
FOR $a IN distinct-values(document("bib.xml")//author)
WHERE $a = "Jack"
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	_, applied, err := Rewrite(naive)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("filtered outer pattern must block the rewrite")
	}
	// The naive plan still answers correctly.
	out, err := plan.Eval(tax.NewCollection(paperdata.SampleDatabase()), naive)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`authorpubs[author:"Jack" title:"Querying XML" title:"XML and the Web"]`}
	if !reflect.DeepEqual(out.Strings(), want) {
		t.Errorf("filtered naive = %v, want %v", out.Strings(), want)
	}
}

func TestNoRewriteOnNonStitch(t *testing.T) {
	op := &plan.DBScan{}
	out, applied, err := Rewrite(op)
	if err != nil || applied || out != op {
		t.Errorf("Rewrite(DBScan) = %v %v %v", out, applied, err)
	}
}

func TestRewriteOrderPreservedManyAuthors(t *testing.T) {
	// A larger randomized-ish database: equivalence including order.
	e, el := xmltree.E, xmltree.Elem
	db := e("doc_root")
	// Adjacent names always differ, so no article carries two equal
	// author values (see TestRewriteDuplicateAuthorCaveat for why).
	names := []string{"W", "A", "M", "B", "A", "W", "Z", "Q", "A", "M"}
	for i, n := range names {
		second := names[(i+1)%len(names)]
		db.Append(e("article",
			el("author", n),
			el("author", second),
			el("title", "T"+string(rune('0'+i))),
		))
	}
	naive, err := plan.Translate(xq.MustParse(query1Src))
	if err != nil {
		t.Fatal(err)
	}
	rw, applied, err := Rewrite(naive)
	if err != nil || !applied {
		t.Fatal(err)
	}
	base := tax.NewCollection(db)
	nOut, err := plan.Eval(base, naive)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := plan.Eval(base, rw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nOut.Strings(), rOut.Strings()) {
		t.Errorf("order/content mismatch:\nnaive   %v\ngroupby %v", nOut.Strings(), rOut.Strings())
	}
}
