package planner

import (
	"fmt"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/stats"
)

// MatcherCandidate is one costed matcher alternative.
type MatcherCandidate struct {
	Matcher match.MatcherKind
	Cost    float64
	// Detail summarizes where the cost comes from, for EXPLAIN output.
	Detail string
}

// MatcherDecision is the planner's pattern-matcher choice plus the
// reasoning behind it, the physical-path sibling of Decision: Decision
// picks the grouping executor, MatcherDecision picks the algorithm
// that embeds the pattern tree into the database underneath it.
type MatcherDecision struct {
	// Matcher is the chosen algorithm.
	Matcher match.MatcherKind
	// Candidates holds every costed alternative, cheapest first.
	Candidates []MatcherCandidate
	// JoinOrder is the edge-resolution order the chosen matcher is
	// expected to use: the planner's greedy simulation for the binary
	// cascade, pattern pre-order for the holistic matcher (which binds
	// all streams at once).
	JoinOrder []string
	// Witnesses is the estimated binding count.
	Witnesses float64
	// StatsUsed reports whether cardinality statistics informed the
	// choice; without them the holistic matcher is the structural
	// default whenever the pattern qualifies.
	StatsUsed bool
}

// NodeEstimate estimates how many postings one pattern node's access
// path yields. A tag alone scans the tag index; a tag plus an equality
// content predicate probes the value index, which returns about
// ValuePostings/DistinctValues postings per distinct content — this is
// where a selective value predicate shrinks the estimate. An untagged
// node falls back to every node in the database.
func NodeEstimate(cat *stats.Catalog, pn *pattern.Node) float64 {
	tag := pn.TagConstraint()
	if tag == "" {
		return float64(cat.TotalNodes)
	}
	est := cat.Postings(tag)
	if hasContentEq(pn) {
		if m := cat.AvgValueMatches(tag); m < est {
			est = m
		}
	}
	return est
}

func hasContentEq(pn *pattern.Node) bool {
	for _, p := range pn.Preds {
		if ceq, ok := p.(pattern.ContentEq); ok && len(ceq.Value) > 0 {
			return true
		}
	}
	return false
}

// residual reports whether the node carries predicates no index
// answers (globs, content on untagged nodes), which force per-posting
// record fetches in every matcher.
func residual(pn *pattern.Node) bool {
	for _, p := range pn.Preds {
		switch p.(type) {
		case pattern.TagEq:
		case pattern.ContentEq:
			if pn.TagConstraint() == "" {
				return true
			}
		default:
			return true
		}
	}
	return false
}

// ChooseMatcher costs the holistic twig matcher against the cascaded
// binary structural joins for a pattern tree, in the same
// posting-access units as Choose. The binary cascade pays to
// materialize every node's candidate list and every intermediate row
// set; the holistic matcher pays only for the postings its aligned
// streams cannot skip plus root-to-leaf path solutions. Without
// statistics the holistic matcher wins by default whenever the
// pattern qualifies (every node tagged); a disqualified pattern is
// always binary.
func ChooseMatcher(cat *stats.Catalog, pt *pattern.Tree) *MatcherDecision {
	order := patternPreorder(pt.Root)
	labels := make([]string, len(order))
	for i, pn := range order {
		labels[i] = pn.Label
	}
	if !match.TwigApplicable(pt) {
		return &MatcherDecision{
			Matcher: match.MatcherBinary,
			Candidates: []MatcherCandidate{{Matcher: match.MatcherBinary,
				Detail: "untagged pattern node needs a scan; only the binary cascade has one"}},
			JoinOrder: labels,
		}
	}
	if cat == nil || len(cat.Tags) == 0 || cat.TotalNodes == 0 {
		return &MatcherDecision{
			Matcher: match.MatcherTwig,
			Candidates: []MatcherCandidate{{Matcher: match.MatcherTwig,
				Detail: "no statistics; holistic matcher is the structural default"}},
			JoinOrder: labels,
		}
	}

	// Shared per-node access estimates and structural row estimates.
	idx := make(map[string]int, len(order))
	for i, pn := range order {
		idx[pn.Label] = i
	}
	est := make([]float64, len(order))
	rows := make([]float64, len(order))
	fetches := 0.0 // record fetches for residual predicates (both matchers)
	for i, pn := range order {
		est[i] = NodeEstimate(cat, pn)
		if i == 0 {
			rows[i] = est[i]
		} else {
			p := idx[pn.Parent.Label]
			rows[i] = edgeRows(cat, order[p].TagConstraint(), rows[p], pn.TagConstraint(), est[i])
		}
		if residual(pn) {
			fetches += est[i]
		}
	}
	// Witness estimate under edge independence: the root's rows thinned
	// by each edge's surviving fraction.
	w := rows[0]
	for i := 1; i < len(order); i++ {
		p := idx[order[i].Parent.Label]
		if rows[p] > 0 {
			w *= rows[i] / rows[p]
		} else {
			w = 0
		}
	}

	// Binary cascade: decode every candidate list in full, then resolve
	// edges greedily (smallest estimated list first among nodes with a
	// bound parent), materializing the intermediate row set after each.
	binScan := 0.0
	for i := range order {
		binScan += est[i]
	}
	jorder := greedyEstOrder(order, idx, est)
	binJoin, inter, rowsNow := 0.0, 0.0, rows[0]
	for _, i := range jorder {
		p := idx[order[i].Parent.Label]
		frac := 1.0
		if rows[p] > 0 {
			frac = rows[i] / rows[p]
		}
		binJoin += costPosting * (rowsNow + est[i]) // single-pass containment merge
		rowsNow *= frac
		inter += rowsNow
	}
	binary := costPosting*binScan + binJoin + costMaterialize*inter +
		costValueLookup*fetches + costSortRow*w

	// Holistic twig: streams fast-forward past documents missing any of
	// the pattern's tags, so each stream decodes only the fraction of
	// its postings living in documents where every tag occurs (bounded
	// by the rarest tag's document count). Intermediates are
	// root-to-leaf path solutions — one set per leaf — merged on shared
	// ancestor prefixes.
	minDocs := float64(cat.Tag(order[0].TagConstraint()).Docs)
	for _, pn := range order[1:] {
		if d := float64(cat.Tag(pn.TagConstraint()).Docs); d < minDocs {
			minDocs = d
		}
	}
	twigScan, leaves := 0.0, 0.0
	for i, pn := range order {
		f := 1.0
		if d := float64(cat.Tag(pn.TagConstraint()).Docs); d > 0 && minDocs < d {
			f = minDocs / d
		}
		twigScan += est[i] * f
		if len(pn.Children) == 0 {
			leaves++
		}
	}
	paths := leaves * w // per-leaf path solutions ≈ witnesses each
	twig := costPosting*twigScan + costMaterialize*paths +
		costPosting*paths + // hash-merge on shared prefixes
		costValueLookup*fetches + costSortRow*w

	cands := []MatcherCandidate{
		{Matcher: match.MatcherBinary, Cost: binary,
			Detail: fmt.Sprintf("decode %.0f candidates + materialize %.0f intermediate rows", binScan, inter)},
		{Matcher: match.MatcherTwig, Cost: twig,
			Detail: fmt.Sprintf("stream %.0f aligned postings + %.0f path solutions", twigScan, paths)},
	}
	if cands[1].Cost < cands[0].Cost {
		cands[0], cands[1] = cands[1], cands[0]
	}
	d := &MatcherDecision{
		Matcher:    cands[0].Matcher,
		Candidates: cands,
		Witnesses:  w,
		StatsUsed:  true,
	}
	if d.Matcher == match.MatcherBinary {
		d.JoinOrder = append(d.JoinOrder, order[0].Label)
		for _, i := range jorder {
			d.JoinOrder = append(d.JoinOrder, order[i].Label)
		}
	} else {
		d.JoinOrder = labels
	}
	return d
}

// edgeRows is EdgeCardinality with the child's access-path estimate in
// place of its raw posting count, so a value predicate's selectivity
// (NodeEstimate) flows through the structural simulation.
func edgeRows(cat *stats.Catalog, parentTag string, parentRows float64, childTag string, childEst float64) float64 {
	r := childEst * cat.DocOverlap(parentTag, childTag)
	if parentRows > 0 {
		if fan := cat.AvgFanout(childTag); fan > 0 {
			if lim := parentRows * fan; lim < r {
				r = lim
			}
		}
	}
	return r
}

// greedyEstOrder simulates the binary cascade's join ordering on
// estimated candidate-list sizes: among unbound nodes whose parent is
// bound, take the smallest list first (MatchDB uses actual list
// lengths; the planner only has estimates).
func greedyEstOrder(order []*pattern.Node, idx map[string]int, est []float64) []int {
	bound := make([]bool, len(order))
	bound[0] = true
	seq := make([]int, 0, len(order)-1)
	for len(seq) < len(order)-1 {
		best := -1
		for i := 1; i < len(order); i++ {
			if bound[i] || !bound[idx[order[i].Parent.Label]] {
				continue
			}
			if best < 0 || est[i] < est[best] {
				best = i
			}
		}
		seq = append(seq, best)
		bound[best] = true
	}
	return seq
}

// patternPreorder lists the pattern nodes root-first (document order of
// the pattern tree), matching the matchers' own node ordering.
func patternPreorder(root *pattern.Node) []*pattern.Node {
	out := []*pattern.Node{root}
	for _, c := range root.Children {
		out = append(out, patternPreorder(c)...)
	}
	return out
}
