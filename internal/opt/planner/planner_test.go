package planner

import (
	"strings"
	"testing"

	"timber/internal/exec"
	"timber/internal/stats"
)

// e1Spec mirrors the paper's Query 1: group articles by author,
// return titles.
func e1Spec() exec.Spec {
	return exec.Spec{
		MemberTag: "article",
		JoinPath:  exec.ChildPath("author"),
		ValuePath: exec.ChildPath("title"),
		OutTag:    "authorpubs",
		Mode:      exec.Titles,
	}
}

// dblpCatalog is a synthetic but realistically-shaped catalog: 1000
// articles in one document, ~2.5 authors each, one title each.
func dblpCatalog() *stats.Catalog {
	return &stats.Catalog{
		Epoch:      3,
		Version:    42,
		TotalNodes: 4700,
		Documents:  1,
		Fresh:      true,
		Tags: map[string]stats.TagStat{
			"article": {Postings: 1000, Docs: 1},
			"author":  {Postings: 2500, Docs: 1, ValuePostings: 2500, DistinctValues: 400},
			"title":   {Postings: 1000, Docs: 1, ValuePostings: 1000, DistinctValues: 990},
		},
	}
}

// TestChooseWithoutStats: no catalog means no cost model — the
// streaming groupby default, flagged as such.
func TestChooseWithoutStats(t *testing.T) {
	for _, cat := range []*stats.Catalog{nil, {}, {TotalNodes: 0, Tags: map[string]stats.TagStat{}}} {
		d := Choose(cat, e1Spec())
		if d.Strategy != exec.StrategyGroupBy {
			t.Errorf("Choose(%v) = %v, want groupby default", cat, d.Strategy)
		}
		if d.StatsUsed || d.StatsFresh {
			t.Errorf("Choose(%v) reported StatsUsed=%v StatsFresh=%v", cat, d.StatsUsed, d.StatsFresh)
		}
		if len(d.Operators) == 0 {
			t.Error("default decision should still outline the pipeline")
		}
	}
}

// TestChooseCostsAllCandidates: with statistics the decision lists the
// three costed plans cheapest-first, the chosen strategy is the
// cheapest, and the headline cardinalities are populated.
func TestChooseCostsAllCandidates(t *testing.T) {
	d := Choose(dblpCatalog(), e1Spec())
	if !d.StatsUsed || !d.StatsFresh {
		t.Errorf("StatsUsed=%v StatsFresh=%v, want both true", d.StatsUsed, d.StatsFresh)
	}
	if len(d.Candidates) != 3 {
		t.Fatalf("candidates = %d, want 3", len(d.Candidates))
	}
	seen := map[exec.Strategy]bool{}
	for i, c := range d.Candidates {
		seen[c.Strategy] = true
		if c.Cost <= 0 {
			t.Errorf("candidate %v cost = %v, want > 0", c.Strategy, c.Cost)
		}
		if i > 0 && c.Cost < d.Candidates[i-1].Cost {
			t.Errorf("candidates not sorted by cost: %+v", d.Candidates)
		}
	}
	for _, s := range []exec.Strategy{exec.StrategyGroupBy, exec.StrategyGroupByMat, exec.StrategyDirect} {
		if !seen[s] {
			t.Errorf("candidate %v missing", s)
		}
	}
	if d.Strategy != d.Candidates[0].Strategy {
		t.Errorf("chose %v but cheapest is %v", d.Strategy, d.Candidates[0].Strategy)
	}
	if d.Members != 1000 || d.Witnesses <= 0 || d.Groups <= 0 {
		t.Errorf("cardinalities M=%v W=%v G=%v", d.Members, d.Witnesses, d.Groups)
	}
	// On this shape identifier-only streaming must beat the naive
	// navigation plan — the paper's headline result.
	var stream, direct float64
	for _, c := range d.Candidates {
		switch c.Strategy {
		case exec.StrategyGroupBy:
			stream = c.Cost
		case exec.StrategyDirect:
			direct = c.Cost
		}
	}
	if stream >= direct {
		t.Errorf("streaming cost %v >= direct cost %v on a groupby-friendly shape", stream, direct)
	}
}

// TestChooseDirectOnTinyData: when the data is small enough that
// navigation is cheap and sort/merge overheads dominate, the planner
// may pick any plan — but it must stay deterministic for one catalog.
func TestChooseDeterministic(t *testing.T) {
	a := Choose(dblpCatalog(), e1Spec())
	b := Choose(dblpCatalog(), e1Spec())
	if a.Strategy != b.Strategy || len(a.Candidates) != len(b.Candidates) {
		t.Errorf("Choose is nondeterministic: %v vs %v", a.Strategy, b.Strategy)
	}
}

// TestOperatorEstimates: the chosen plan's operator list names the
// executor's trace spans and carries plausible row estimates.
func TestOperatorEstimates(t *testing.T) {
	d := Choose(dblpCatalog(), e1Spec())
	names := map[string]float64{}
	for _, op := range d.Operators {
		names[op.Op] = op.Rows
	}
	if v, ok := names["scan: member postings"]; !ok || v != 1000 {
		t.Errorf("scan estimate = %v (present %v), want 1000", v, ok)
	}
	if _, ok := names["select: join author"]; !ok {
		t.Errorf("missing join select; ops = %v", d.Operators)
	}
}

// TestDescribeForcedStrategies: Describe covers the costed trio (and
// auto), returns nil for plans the cost model has no operator map for.
func TestDescribeForcedStrategies(t *testing.T) {
	cat, spec := dblpCatalog(), e1Spec()
	for _, s := range []exec.Strategy{
		exec.StrategyAuto, exec.StrategyGroupBy, exec.StrategyGroupByMat, exec.StrategyDirect,
	} {
		if ops := Describe(cat, spec, s); len(ops) == 0 {
			t.Errorf("Describe(%v) = empty", s)
		}
	}
	for _, s := range []exec.Strategy{
		exec.StrategyDirectNested, exec.StrategyReplicating, exec.StrategyLogical,
	} {
		if ops := Describe(cat, spec, s); ops != nil {
			t.Errorf("Describe(%v) = %v, want nil", s, ops)
		}
	}
	// Without statistics Describe still outlines the pipeline (zero
	// estimates) so EXPLAIN renders.
	if ops := Describe(nil, spec, exec.StrategyGroupBy); len(ops) == 0 {
		t.Error("Describe(nil catalog) = empty")
	}
}

// TestOrderPathCosted: an ORDER BY adds order-path operators and cost.
func TestOrderPathCosted(t *testing.T) {
	spec := e1Spec()
	spec.OrderPath = exec.ChildPath("year")
	cat := dblpCatalog()
	cat.Tags["year"] = stats.TagStat{Postings: 1000, Docs: 1, ValuePostings: 1000, DistinctValues: 30}
	d := Choose(cat, spec)
	var found bool
	for _, op := range d.Operators {
		if strings.HasPrefix(op.Op, "select: order ") || op.Op == "populate: ordering values" {
			found = true
		}
	}
	if !found {
		t.Errorf("no ordering operators in %v", d.Operators)
	}
	plain := Choose(dblpCatalog(), e1Spec())
	if d.Candidates[0].Cost <= plain.Candidates[0].Cost {
		t.Errorf("ordered cost %v <= unordered %v", d.Candidates[0].Cost, plain.Candidates[0].Cost)
	}
}
