package planner

import (
	"testing"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/stats"
)

// chainPattern builds doc_root //article /author.
func chainPattern() *pattern.Tree {
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	art := pr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	art.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "author"}))
	return pattern.MustTree(pr)
}

// matcherCatalog shapes a corpus where only a fraction of documents
// carry the full chain — the holistic matcher's home turf.
func matcherCatalog() *stats.Catalog {
	return &stats.Catalog{
		TotalNodes: 50000,
		Documents:  100,
		Fresh:      true,
		Tags: map[string]stats.TagStat{
			"doc_root": {Postings: 100, Docs: 100},
			"article":  {Postings: 10000, Docs: 100},
			"author":   {Postings: 2000, Docs: 10, ValuePostings: 2000, DistinctValues: 500},
		},
	}
}

// TestChooseMatcherWithoutStats: no catalog — holistic by structural
// default when the pattern qualifies, binary when it cannot.
func TestChooseMatcherWithoutStats(t *testing.T) {
	d := ChooseMatcher(nil, chainPattern())
	if d.Matcher != match.MatcherTwig || d.StatsUsed {
		t.Errorf("no-stats decision = %v (StatsUsed=%v), want twig default", d.Matcher, d.StatsUsed)
	}
	if len(d.JoinOrder) != 3 || d.JoinOrder[0] != "$1" {
		t.Errorf("JoinOrder = %v", d.JoinOrder)
	}

	untagged := pattern.MustTree(pattern.NewNode("$1", pattern.ContentEq{Value: "x"}))
	d = ChooseMatcher(matcherCatalog(), untagged)
	if d.Matcher != match.MatcherBinary {
		t.Errorf("untagged pattern chose %v, want binary", d.Matcher)
	}
}

// TestChooseMatcherCostsBoth: with statistics both matchers are
// costed, cheapest first, and the chosen one is the cheapest. On the
// sparse-chain catalog the holistic matcher must win: its streams skip
// the 90% of documents without authors.
func TestChooseMatcherCostsBoth(t *testing.T) {
	d := ChooseMatcher(matcherCatalog(), chainPattern())
	if !d.StatsUsed || len(d.Candidates) != 2 {
		t.Fatalf("decision = %+v", d)
	}
	if d.Candidates[0].Cost > d.Candidates[1].Cost {
		t.Errorf("candidates not sorted: %v", d.Candidates)
	}
	if d.Matcher != d.Candidates[0].Matcher {
		t.Errorf("chose %v but cheapest is %v", d.Matcher, d.Candidates[0].Matcher)
	}
	if d.Matcher != match.MatcherTwig {
		t.Errorf("sparse chain chose %v, want twig (candidates %+v)", d.Matcher, d.Candidates)
	}
	if d.Witnesses <= 0 {
		t.Errorf("Witnesses estimate = %v", d.Witnesses)
	}
}

// TestChooseMatcherBinaryJoinOrder: when binary wins, JoinOrder is the
// greedy estimated order — root first, then smallest candidate list
// among bound-parent nodes.
func TestChooseMatcherBinaryJoinOrder(t *testing.T) {
	// Uniform document overlap: no skipping for twig to exploit, and a
	// wide branch making the binary's cheap-edge-first order matter.
	cat := &stats.Catalog{
		TotalNodes: 20000,
		Documents:  10,
		Fresh:      true,
		Tags: map[string]stats.TagStat{
			"article": {Postings: 1000, Docs: 10},
			"author":  {Postings: 5000, Docs: 10},
			"title":   {Postings: 100, Docs: 10},
		},
	}
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	pr.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	pr.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "title"}))
	d := ChooseMatcher(cat, pattern.MustTree(pr))
	if d.Matcher == match.MatcherBinary {
		want := []string{"$1", "$3", "$2"} // title (100) before author (5000)
		if len(d.JoinOrder) != 3 || d.JoinOrder[0] != want[0] || d.JoinOrder[1] != want[1] || d.JoinOrder[2] != want[2] {
			t.Errorf("JoinOrder = %v, want %v", d.JoinOrder, want)
		}
	}
}

// TestNodeEstimateValuePredicate pins satellite S1: an equality
// content predicate routes through the value index, shrinking the
// node estimate by the tag's distinct-value count — more distinct
// values, more selective, smaller estimate.
func TestNodeEstimateValuePredicate(t *testing.T) {
	cat := matcherCatalog()
	plain := pattern.NewNode("$1", pattern.TagEq{Tag: "author"})
	pinned := pattern.NewNode("$1", pattern.TagEq{Tag: "author"}, pattern.ContentEq{Value: "Jack"})

	if got := NodeEstimate(cat, plain); got != 2000 {
		t.Errorf("plain estimate = %v, want 2000 postings", got)
	}
	got := NodeEstimate(cat, pinned)
	if got != 4 { // 2000 value postings / 500 distinct values
		t.Errorf("value-pinned estimate = %v, want 4", got)
	}

	// Doubling the distinct-value count halves the estimate.
	ts := cat.Tags["author"]
	ts.DistinctValues = 1000
	cat.Tags["author"] = ts
	if got := NodeEstimate(cat, pinned); got != 2 {
		t.Errorf("estimate with 1000 distinct values = %v, want 2", got)
	}
}

// TestChooseMatcherValuePredicateFlows: the value predicate's
// selectivity must reach the matcher costs, not just NodeEstimate —
// pinning the author's content shrinks both candidates' costs.
func TestChooseMatcherValuePredicateFlows(t *testing.T) {
	pr := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	art := pr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	art.AddChild(pattern.Child, pattern.NewNode("$3",
		pattern.TagEq{Tag: "author"}, pattern.ContentEq{Value: "Jack"}))
	pinned := ChooseMatcher(matcherCatalog(), pattern.MustTree(pr))
	free := ChooseMatcher(matcherCatalog(), chainPattern())
	costOf := func(d *MatcherDecision, k match.MatcherKind) float64 {
		for _, c := range d.Candidates {
			if c.Matcher == k {
				return c.Cost
			}
		}
		t.Fatalf("no %v candidate in %+v", k, d.Candidates)
		return 0
	}
	for _, k := range []match.MatcherKind{match.MatcherBinary, match.MatcherTwig} {
		if costOf(pinned, k) >= costOf(free, k) {
			t.Errorf("%v: pinned cost %.0f not below unpinned %.0f", k, costOf(pinned, k), costOf(free, k))
		}
	}
	if pinned.Witnesses >= free.Witnesses {
		t.Errorf("pinned witnesses %.0f not below unpinned %.0f", pinned.Witnesses, free.Witnesses)
	}
}
