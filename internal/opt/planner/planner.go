// Package planner is the cost-based half of the optimizer. opt.Rewrite
// decides the plan *shape* — whether the GROUPBY operator applies;
// planner.Choose decides the plan *strategy* — which physical executor
// runs the shape cheapest on the data at hand, using the cardinality
// statistics the storage layer maintains (internal/stats). The engine
// invokes Choose when a query is executed with exec.StrategyAuto (the
// zero value), so engine.ExecOptions{} means "planner decides". It is
// a sibling of internal/opt rather than part of it because the exec
// package's own tests exercise the rewrite (opt → exec here would
// cycle through them).
package planner

import (
	"fmt"
	"sort"

	"timber/internal/exec"
	"timber/internal/stats"
)

// Cost-model unit weights, all in abstract "posting accesses": one
// sequential index posting scanned or merged costs 1; fetching a node
// record to read its content (a value look-up) costs several posting
// scans; navigating through the locator index costs more still (a
// B+tree probe plus a record fetch); materializing an output node is
// between the two. The absolute scale cancels out — only the ratios
// steer the choice — and the ratios follow the paper's Sec. 6
// analysis: identifier processing is cheap, value look-ups and
// navigation dominate.
const (
	costPosting     = 1.0
	costValueLookup = 6.0
	costNav         = 10.0
	costMaterialize = 2.5
	costSortRow     = 1.5
)

// Candidate is one costed strategy alternative.
type Candidate struct {
	Strategy exec.Strategy
	Cost     float64
	// Detail summarizes where the cost comes from, for EXPLAIN output.
	Detail string
}

// OpEstimate is one physical operator's estimated output cardinality,
// named exactly as the executor's trace span (minus the "op: " report
// prefix) so EXPLAIN can join estimates against actuals.
type OpEstimate struct {
	Op   string
	Rows float64
}

// Decision is the planner's choice plus the reasoning behind it.
type Decision struct {
	// Strategy is the chosen physical plan.
	Strategy exec.Strategy
	// Candidates holds every costed alternative, cheapest first.
	Candidates []Candidate
	// Operators estimates the chosen plan's per-operator output rows,
	// in pipeline order.
	Operators []OpEstimate
	// Headline cardinality estimates for the whole query.
	Members, Witnesses, Values, Groups float64
	// StatsUsed reports whether cardinality statistics informed the
	// choice; without them (absent catalog) the planner defaults to the
	// streaming groupby plan.
	StatsUsed bool
	// StatsFresh mirrors the catalog's freshness flag (false also when
	// no statistics were available at all).
	StatsFresh bool
}

// cardEst carries the intermediate cardinalities the cost formulas
// share.
type cardEst struct {
	members   float64 // member-tag postings (M)
	witnesses float64 // join-path matches (W)
	values    float64 // value-path matches (V)
	order     float64 // order-path matches (zero without ORDER BY)
	merged    float64 // merge-LOJ output rows (R)
	groups    float64 // distinct grouping values among witnesses (G)
	basis     float64 // all basis-tag postings (B) — the naive plan's outer scan
	joinScan  float64 // postings scanned extending the join path
	valueScan float64 // postings scanned extending the value path
	orderScan float64 // postings scanned extending the order path
	joinRows  []float64
	valRows   []float64
	ordRows   []float64
}

// estimate derives the shared cardinalities from the catalog.
func estimate(cat *stats.Catalog, spec exec.Spec) cardEst {
	var e cardEst
	e.members = cat.Postings(spec.MemberTag)

	walk := func(path exec.Path) (rows []float64, scanned, out float64) {
		prevTag, prev := spec.MemberTag, e.members
		for _, st := range path {
			scanned += cat.Postings(st.Tag) * cat.DocOverlap(spec.MemberTag, st.Tag)
			prev = cat.EdgeCardinality(prevTag, prev, st.Tag)
			rows = append(rows, prev)
			prevTag = st.Tag
		}
		return rows, scanned, prev
	}
	e.joinRows, e.joinScan, e.witnesses = walk(spec.JoinPath)
	e.valRows, e.valueScan, e.values = walk(spec.ValuePath)
	if spec.OrderPath != nil {
		e.ordRows, e.orderScan, e.order = walk(spec.OrderPath)
	}

	// The merge-LOJ pairs each witness with its member's value matches;
	// with V values spread over M members each witness joins to about
	// V/M of them (at least its own row — it is a LEFT outer join).
	perMember := 1.0
	if e.members > 0 && e.values > e.members {
		perMember = e.values / e.members
	}
	e.merged = e.witnesses * perMember

	e.groups = cat.DistinctValues(spec.BasisTag())
	if e.groups > e.witnesses && e.witnesses > 0 {
		e.groups = e.witnesses
	}
	e.basis = cat.Postings(spec.BasisTag())
	return e
}

// Choose costs the candidate physical plans for a grouping Spec and
// returns the cheapest, with per-operator estimates for EXPLAIN. A nil
// or empty catalog yields the streaming groupby default with
// StatsUsed=false (estimates all zero).
func Choose(cat *stats.Catalog, spec exec.Spec) *Decision {
	if cat == nil || len(cat.Tags) == 0 || cat.TotalNodes == 0 {
		d := &Decision{Strategy: exec.StrategyGroupBy}
		d.Candidates = []Candidate{{Strategy: exec.StrategyGroupBy, Detail: "no statistics; streaming groupby default"}}
		d.Operators = streamingOps(spec, cardEst{})
		return d
	}
	e := estimate(cat, spec)

	outputLookups := 0.0 // sink value look-ups (Titles materializes V contents; Count none)
	if spec.Mode == exec.Titles {
		outputLookups = e.values
	}
	orderCost := costPosting*e.orderScan + costValueLookup*e.order

	// Streaming groupby: identifier-only pipeline; value look-ups only
	// for grouping values (W) and the sink's output (Titles).
	streaming := costPosting*(e.members+e.joinScan+e.valueScan) + // scans + selects
		costValueLookup*e.witnesses + // populate grouping values
		costPosting*(e.witnesses+e.values) + // merge-LOJ
		costSortRow*e.merged + // sort
		costPosting*e.merged + // stitch (+aggregate)
		costValueLookup*outputLookups +
		costMaterialize*(e.groups+outputLookups) +
		orderCost

	// Materializing groupby: same index work, but every phase builds a
	// full intermediate (witness array, value-pair map) before the next
	// starts.
	mat := streaming + costMaterialize*(e.witnesses+e.values)

	// Naive direct plan: populate ALL basis values up front (B
	// look-ups, not W), then navigate per distinct value to build the
	// product trees — locator probes instead of identifier joins.
	navDepth := float64(len(spec.JoinPath) + len(spec.ValuePath))
	direct := costPosting*e.basis + costValueLookup*e.basis +
		costNav*e.witnesses*navDepth +
		costValueLookup*outputLookups +
		costMaterialize*(e.values+e.groups) +
		orderCost

	cands := []Candidate{
		{Strategy: exec.StrategyGroupBy, Cost: streaming,
			Detail: fmt.Sprintf("scan %.0f + populate %.0f values + sort %.0f rows", e.members+e.joinScan+e.valueScan, e.witnesses, e.merged)},
		{Strategy: exec.StrategyGroupByMat, Cost: mat,
			Detail: fmt.Sprintf("streaming cost + materialize %.0f intermediates", e.witnesses+e.values)},
		{Strategy: exec.StrategyDirect, Cost: direct,
			Detail: fmt.Sprintf("populate %.0f basis values + navigate %.0f witnesses", e.basis, e.witnesses)},
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Cost < cands[j].Cost })

	d := &Decision{
		Strategy:   cands[0].Strategy,
		Candidates: cands,
		Members:    e.members,
		Witnesses:  e.witnesses,
		Values:     e.values,
		Groups:     e.groups,
		StatsUsed:  true,
		StatsFresh: cat.Fresh,
	}
	switch d.Strategy {
	case exec.StrategyGroupByMat:
		d.Operators = materializedOps(spec, e)
	case exec.StrategyDirect:
		d.Operators = directOps(spec, e)
	default:
		d.Operators = streamingOps(spec, e)
	}
	return d
}

// Describe returns the per-operator estimates for an explicitly
// requested strategy — EXPLAIN under an override still shows what the
// planner expects of it. Returns nil for strategies the cost model
// doesn't cover (nested/batch/replicating variants, plan-level
// strategies).
func Describe(cat *stats.Catalog, spec exec.Spec, strat exec.Strategy) []OpEstimate {
	var e cardEst
	if cat != nil && len(cat.Tags) > 0 && cat.TotalNodes > 0 {
		e = estimate(cat, spec)
	}
	switch strat {
	case exec.StrategyAuto, exec.StrategyGroupBy:
		return streamingOps(spec, e)
	case exec.StrategyGroupByMat:
		return materializedOps(spec, e)
	case exec.StrategyDirect:
		return directOps(spec, e)
	}
	return nil
}

// streamingOps lists the streaming groupby pipeline's operators with
// their estimated output rows, named as the executor's trace spans.
func streamingOps(spec exec.Spec, e cardEst) []OpEstimate {
	ops := []OpEstimate{{"scan: member postings", e.members}}
	for i, st := range spec.JoinPath {
		ops = append(ops, OpEstimate{"select: join " + st.Tag, at(e.joinRows, i)})
	}
	ops = append(ops, OpEstimate{"populate: grouping values", e.witnesses})
	for i, st := range spec.ValuePath {
		ops = append(ops, OpEstimate{"select: value " + st.Tag, at(e.valRows, i)})
	}
	ops = append(ops, OpEstimate{"mergejoin: values", e.merged})
	if spec.OrderPath != nil {
		for i, st := range spec.OrderPath {
			ops = append(ops, OpEstimate{"select: order " + st.Tag, at(e.ordRows, i)})
		}
		first := e.order
		if first > e.members && e.members > 0 {
			first = e.members // dupelim keeps the first match per member
		}
		ops = append(ops,
			OpEstimate{"dupelim: order matches", first},
			OpEstimate{"populate: ordering values", first})
	}
	ops = append(ops,
		OpEstimate{"sort: witnesses", e.merged},
		// Stitch re-emits every sorted row plus one boundary marker per
		// group — its rows_out counter includes both.
		OpEstimate{"stitch: group boundaries", e.merged + e.groups})
	if spec.Mode == exec.Count {
		ops = append(ops, OpEstimate{"aggregate: group counts", e.groups})
	}
	ops = append(ops, OpEstimate{"materialize: groups", e.groups})
	return ops
}

// materializedOps mirrors groupByMaterialized's phase spans.
func materializedOps(spec exec.Spec, e cardEst) []OpEstimate {
	ops := []OpEstimate{
		{"scan: member postings", e.members},
		{"sjoin: join path", e.witnesses},
		{"sjoin: value path", e.values},
		{"populate: grouping values", e.witnesses},
	}
	if spec.OrderPath != nil {
		ops = append(ops, OpEstimate{"populate: ordering values", e.order})
	}
	ops = append(ops,
		OpEstimate{"sort: witnesses", e.witnesses},
		OpEstimate{"materialize: groups", e.groups})
	return ops
}

// directOps mirrors directMaterialized's phase spans.
func directOps(spec exec.Spec, e cardEst) []OpEstimate {
	return []OpEstimate{
		{"materialize: outer selection", e.basis},
		{"sjoin: join path", e.witnesses},
		{"materialize: product trees", e.groups},
		{"eval: RETURN arguments", e.groups},
	}
}

func at(rows []float64, i int) float64 {
	if i < len(rows) {
		return rows[i]
	}
	return 0
}
