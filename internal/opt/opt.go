// Package opt implements the rewrite algorithm of Sec. 4.1: Phase 1
// detects the grouping idiom in a naively translated plan (a left
// outer join between the outcome of a previous selection and the
// database, whose outer pattern is a subset of the inner pattern), and
// Phase 2 rewrites the plan into a single-block expression around the
// GROUPBY operator — the paper's Figure 5 pipeline.
package opt

import (
	"fmt"

	"timber/internal/pattern"
	"timber/internal/plan"
	"timber/internal/tax"
)

// Rewrite applies the grouping rewrite when Phase 1 detects it. It
// returns the rewritten plan and true, or the original plan and false
// when the idiom is absent. A malformed idiom (detected but impossible
// to rewrite) returns an error.
func Rewrite(op plan.Op) (plan.Op, bool, error) {
	st, ok := op.(*plan.Stitch)
	if !ok {
		return op, false, nil
	}
	det, ok := detect(st)
	if !ok {
		return op, false, nil
	}
	out, err := rebuild(st, det)
	if err != nil {
		return op, false, err
	}
	return out, true, nil
}

// detection carries everything Phase 2 needs.
type detection struct {
	join     *plan.LeftOuterJoin
	mapping  map[string]string // outer labels -> inner labels (subset witness)
	outerOp  plan.Op           // the shared outer pipeline result
	boundLbl string            // SL label in the inner pattern (the grouped element)
	parts    []partInfo
}

type partKind int

const (
	basisPart  partKind = iota // {$a}: extract the grouping value
	valuesPart                 // nested FLWR / {$t}: extract return-path values
	countPart                  // {count($t)}
)

type partInfo struct {
	kind      partKind
	prodPat   *pattern.Tree // for values/count parts: TAX_prod_root pattern
	valLbl    string        // label of the value node in prodPat
	orderPath []string      // ORDER BY path relative to the member, if any
	orderDesc bool
}

// detect implements Phase 1 on the stitched naive plan.
func detect(st *plan.Stitch) (*detection, bool) {
	det := &detection{}
	for _, p := range st.Parts {
		switch inner := p.Op.(type) {
		case *plan.Project:
			// Candidate {$a} part: Project(Select(outer)).
			sel, ok := inner.In.(*plan.Select)
			if !ok {
				return nil, false
			}
			if !isOuterPipeline(sel.In) {
				return nil, false
			}
			det.outerOp = sel.In
			det.parts = append(det.parts, partInfo{kind: basisPart})
		case *plan.ProjectPerTree:
			mid := inner.In
			var orderPath []string
			var orderDesc bool
			if s, ok := mid.(*plan.SortChildrenByPath); ok {
				orderPath, orderDesc = s.Path, s.Desc
				mid = s.In
			}
			switch m := mid.(type) {
			case *plan.DedupChildren:
				join, ok := m.In.(*plan.LeftOuterJoin)
				if !ok {
					return nil, false
				}
				if !checkJoin(det, join) {
					return nil, false
				}
				det.parts = append(det.parts, partInfo{
					kind: valuesPart, prodPat: inner.Pattern, valLbl: starLabel(inner.PL),
					orderPath: orderPath, orderDesc: orderDesc,
				})
			case *plan.Aggregate:
				src := m.In
				if s, ok := src.(*plan.SortChildrenByPath); ok {
					src = s.In // ordering is irrelevant to COUNT
				}
				dd, ok := src.(*plan.DedupChildren)
				if !ok {
					return nil, false
				}
				join, ok := dd.In.(*plan.LeftOuterJoin)
				if !ok {
					return nil, false
				}
				if !checkJoin(det, join) {
					return nil, false
				}
				if m.Spec.Fn != tax.Count {
					return nil, false
				}
				det.parts = append(det.parts, partInfo{
					kind: countPart, prodPat: m.Pattern, valLbl: m.Spec.SrcLabel,
				})
			default:
				return nil, false
			}
		default:
			return nil, false
		}
	}
	if det.join == nil {
		return nil, false // no join: nothing to rewrite
	}
	// Phase 1 step 1: the join's left input must be the outcome of the
	// previous selection pipeline and its right input the database.
	if det.outerOp != nil && det.join.Left != det.outerOp {
		return nil, false
	}
	if _, ok := det.join.Right.(*plan.DBScan); !ok {
		return nil, false
	}
	if !isOuterPipeline(det.join.Left) {
		return nil, false
	}
	// Phase 1 step 2: outer pattern ⊆ inner pattern (with the edge-mark
	// rules of footnote 6).
	mapping, ok := pattern.Subset(det.join.Spec.LeftPattern, det.join.Spec.RightPattern)
	if !ok {
		return nil, false
	}
	// The outer bound variable must correspond to the join value node,
	// otherwise grouping on the join value would not reproduce the
	// outer bindings.
	if mapping[det.join.Spec.LeftLabel] != det.join.Spec.RightLabel {
		return nil, false
	}
	det.mapping = mapping
	if len(det.join.Spec.SL) != 1 {
		return nil, false
	}
	det.boundLbl = det.join.Spec.SL[0].Label
	return det, true
}

// checkJoin records the join, insisting every join part shares one.
func checkJoin(det *detection, j *plan.LeftOuterJoin) bool {
	if det.join == nil {
		det.join = j
		return true
	}
	return det.join == j
}

// isOuterPipeline recognizes the outer FOR pipeline:
// [DupElimContent] <- Project <- Select <- DBScan.
func isOuterPipeline(op plan.Op) bool {
	if d, ok := op.(*plan.DupElimContent); ok {
		op = d.In
	}
	pr, ok := op.(*plan.Project)
	if !ok {
		return false
	}
	sel, ok := pr.In.(*plan.Select)
	if !ok {
		return false
	}
	_, ok = sel.In.(*plan.DBScan)
	return ok
}

func starLabel(pl []tax.Item) string {
	if len(pl) == 1 {
		return pl[0].Label
	}
	return ""
}

// rebuild implements Phase 2: it constructs the GROUPBY plan of
// Figure 5 from the detected pieces.
func rebuild(st *plan.Stitch, det *detection) (plan.Op, error) {
	inner := det.join.Spec.RightPattern
	bound := inner.NodeByLabel(det.boundLbl)
	joinNode := inner.NodeByLabel(det.join.Spec.RightLabel)
	if bound == nil || joinNode == nil {
		return nil, fmt.Errorf("opt: join pattern lacks %s or %s", det.boundLbl, det.join.Spec.RightLabel)
	}

	// Phase 2 step 1 (Figure 5.a): initial pattern — the bound
	// variable with its path from the document root. Selection with the
	// bound variable as selection list, projection with its star.
	initPat, initBound, err := pathPattern(bound)
	if err != nil {
		return nil, err
	}
	sel := &plan.Select{In: &plan.DBScan{}, Pattern: initPat, SL: []tax.Item{tax.L(initBound)}}
	proj := &plan.Project{In: sel, Pattern: pcVersion(initPat), PL: []tax.Item{tax.LS(initBound)}}

	// Phase 2 step 2 (Figure 5.b): the GROUPBY input pattern — the
	// subtree of the inner pattern from the bound element to the join
	// value; the grouping basis is the join value's content; the
	// ordering list would come from a user-requested sort (none in this
	// query family).
	gbPat, gbValueLbl, err := subPathPattern(bound, joinNode)
	if err != nil {
		return nil, err
	}
	grouped := &plan.GroupBy{
		In:      proj,
		Pattern: gbPat,
		Basis:   []tax.BasisItem{{Label: gbValueLbl}},
	}
	// Phase 2 step 2, ordering list: "generated from the projection
	// pattern tree of the inner FLWR statement; only if sorting was
	// requested by the user". The ORDER BY path extends the GROUPBY
	// pattern with a branch whose node supplies the ordering value.
	for _, pi := range det.parts {
		if pi.kind != valuesPart || pi.orderPath == nil {
			continue
		}
		lbl, err := extendWithPath(gbPat, pi.orderPath)
		if err != nil {
			return nil, err
		}
		dir := tax.Ascending
		if pi.orderDesc {
			dir = tax.Descending
		}
		grouped.Ordering = append(grouped.Ordering, tax.OrderItem{Direction: dir, Label: lbl})
		break
	}

	// Phase 2 steps 4–5 (Figure 5.d): the final projection per RETURN
	// argument, plus the rename folded into the stitch tag.
	out := &plan.Stitch{Tag: st.Tag}
	for _, pi := range det.parts {
		switch pi.kind {
		case basisPart:
			// The grouping-basis child of each group tree is the match
			// of the join-value node (author/institution), not of the
			// grouped member element.
			p, err := basisProjection(joinNode.TagConstraint())
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, plan.StitchPart{Op: &plan.ProjectPerTree{
				In: grouped, Pattern: p.tree, PL: []tax.Item{tax.LS(p.valueLbl)},
			}, Splice: true})
		case valuesPart:
			p, err := memberProjection(bound.TagConstraint(), pi)
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, plan.StitchPart{Op: &plan.ProjectPerTree{
				In: grouped, Pattern: p.tree, PL: []tax.Item{tax.LS(p.valueLbl)},
			}, Splice: true})
		case countPart:
			p, err := memberProjection(bound.TagConstraint(), pi)
			if err != nil {
				return nil, err
			}
			agg := &plan.Aggregate{
				In:      grouped,
				Pattern: p.tree,
				Spec: tax.AggSpec{
					Fn:          tax.Count,
					SrcLabel:    p.valueLbl,
					NewTag:      plan.CountTag,
					AnchorLabel: p.rootLbl,
					Place:       tax.AfterLastChild,
				},
			}
			cnt, err := countProjection()
			if err != nil {
				return nil, err
			}
			out.Parts = append(out.Parts, plan.StitchPart{Op: &plan.ProjectPerTree{
				In: agg, Pattern: cnt.tree, PL: []tax.Item{tax.LS(cnt.valueLbl)},
			}, Splice: true})
		}
	}
	return out, nil
}

// projection bundles a pattern with the labels the caller cares about.
type projection struct {
	tree     *pattern.Tree
	rootLbl  string
	valueLbl string
}

// basisProjection extracts the grouping-basis element from group trees:
// TAX_group_root / TAX_grouping_basis / <basisTag>.
func basisProjection(basisTag string) (*projection, error) {
	lg := 0
	next := func() string { lg++; return fmt.Sprintf("$%d", lg) }
	root := pattern.NewNode(next(), pattern.TagEq{Tag: tax.GroupRootTag})
	gb := root.AddChild(pattern.Child, pattern.NewNode(next(), pattern.TagEq{Tag: tax.GroupingBasisTag}))
	val := gb.AddChild(pattern.Child, pattern.NewNode(next(), pattern.TagEq{Tag: basisTag}))
	pt, err := pattern.NewTree(root)
	if err != nil {
		return nil, err
	}
	return &projection{tree: pt, rootLbl: root.Label, valueLbl: val.Label}, nil
}

// memberProjection reaches the return-path value inside group members:
// TAX_group_root / TAX_group_subroot / <member> / <return path>. The
// return path is copied from the naive part's product pattern.
func memberProjection(memberTag string, pi partInfo) (*projection, error) {
	lg := 0
	next := func() string { lg++; return fmt.Sprintf("$%d", lg) }
	root := pattern.NewNode(next(), pattern.TagEq{Tag: tax.GroupRootTag})
	sub := root.AddChild(pattern.Child, pattern.NewNode(next(), pattern.TagEq{Tag: tax.GroupSubrootTag}))
	member := sub.AddChild(pattern.Child, pattern.NewNode(next(), pattern.TagEq{Tag: memberTag}))

	// Locate the member element in the product pattern and copy the
	// chain from it down to the value label.
	src := findByTag(pi.prodPat.Root, memberTag)
	if src == nil {
		return nil, fmt.Errorf("opt: product pattern lacks member element %q", memberTag)
	}
	chain, err := chainTo(src, pi.valLbl)
	if err != nil {
		return nil, err
	}
	cur := member
	for _, n := range chain {
		nn := pattern.NewNode(next(), n.Preds...)
		cur.AddChild(n.Axis, nn)
		cur = nn
	}
	pt, err := pattern.NewTree(root)
	if err != nil {
		return nil, err
	}
	return &projection{tree: pt, rootLbl: root.Label, valueLbl: cur.Label}, nil
}

// countProjection extracts the aggregate node the count rewrite
// attaches to group roots.
func countProjection() (*projection, error) {
	root := pattern.NewNode("$1", pattern.TagEq{Tag: tax.GroupRootTag})
	val := root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: plan.CountTag}))
	pt, err := pattern.NewTree(root)
	if err != nil {
		return nil, err
	}
	return &projection{tree: pt, rootLbl: "$1", valueLbl: val.Label}, nil
}

// extendWithPath grafts a child-step chain onto the pattern's root with
// fresh labels and returns the leaf's label.
func extendWithPath(pt *pattern.Tree, path []string) (string, error) {
	n := pt.Size()
	cur := pt.Root
	for _, tag := range path {
		n++
		node := pattern.NewNode(fmt.Sprintf("$%d", n), pattern.TagEq{Tag: tag})
		cur.AddChild(pattern.Child, node)
		cur = node
	}
	// Revalidate label uniqueness by rebuilding the tree index.
	rebuilt, err := pattern.NewTree(pt.Root)
	if err != nil {
		return "", err
	}
	*pt = *rebuilt
	return cur.Label, nil
}

// pathPattern builds a fresh pattern containing only the root-to-node
// path of the given pattern node, preserving axes and predicates. It
// returns the new tree and the label of the copied node.
func pathPattern(target *pattern.Node) (*pattern.Tree, string, error) {
	var path []*pattern.Node
	for n := target; n != nil; n = n.Parent {
		path = append([]*pattern.Node{n}, path...)
	}
	lg := 0
	next := func() string { lg++; return fmt.Sprintf("$%d", lg) }
	root := pattern.NewNode(next(), path[0].Preds...)
	cur := root
	for _, n := range path[1:] {
		nn := pattern.NewNode(next(), n.Preds...)
		cur.AddChild(n.Axis, nn)
		cur = nn
	}
	pt, err := pattern.NewTree(root)
	if err != nil {
		return nil, "", err
	}
	return pt, cur.Label, nil
}

// subPathPattern builds the pattern from ancestor `from` down to
// `to` (inclusive), with fresh labels; returns the tree and the label
// corresponding to `to`.
func subPathPattern(from, to *pattern.Node) (*pattern.Tree, string, error) {
	chain, err := chainTo(from, to.Label)
	if err != nil {
		return nil, "", err
	}
	lg := 0
	next := func() string { lg++; return fmt.Sprintf("$%d", lg) }
	root := pattern.NewNode(next(), from.Preds...)
	cur := root
	for _, n := range chain {
		nn := pattern.NewNode(next(), n.Preds...)
		cur.AddChild(n.Axis, nn)
		cur = nn
	}
	pt, err := pattern.NewTree(root)
	if err != nil {
		return nil, "", err
	}
	return pt, cur.Label, nil
}

// chainTo returns the pattern nodes strictly below `from` on the path
// to the node labelled lbl.
func chainTo(from *pattern.Node, lbl string) ([]*pattern.Node, error) {
	var target *pattern.Node
	var find func(*pattern.Node)
	find = func(n *pattern.Node) {
		if n.Label == lbl {
			target = n
			return
		}
		for _, c := range n.Children {
			find(c)
		}
	}
	find(from)
	if target == nil {
		return nil, fmt.Errorf("opt: label %s not under %s", lbl, from.Label)
	}
	var chain []*pattern.Node
	for n := target; n != from; n = n.Parent {
		chain = append([]*pattern.Node{n}, chain...)
	}
	return chain, nil
}

// findByTag returns the first pattern node requiring the given tag.
func findByTag(root *pattern.Node, tag string) *pattern.Node {
	if root.TagConstraint() == tag {
		return root
	}
	for _, c := range root.Children {
		if n := findByTag(c, tag); n != nil {
			return n
		}
	}
	return nil
}

// pcVersion converts every edge to parent-child (footnote 5; shared
// with the translator but kept local to avoid exporting a helper).
func pcVersion(pt *pattern.Tree) *pattern.Tree {
	cp := pt.Clone()
	var walk func(*pattern.Node)
	walk = func(n *pattern.Node) {
		for _, c := range n.Children {
			c.Axis = pattern.Child
			walk(c)
		}
	}
	walk(cp.Root)
	return cp
}
