package opt

import (
	"testing"

	"timber/internal/plan"
	"timber/internal/xq"
)

// TestRewriteIntroducesSingleBreaker pins the streaming shape of the
// rewritten plan: the GROUPBY rewrite introduces exactly one pipeline
// breaker (the grouping sort) — every other operator of the rewritten
// tree lowers to a streaming iterator.
func TestRewriteIntroducesSingleBreaker(t *testing.T) {
	const src = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`
	naive, err := plan.Translate(xq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	rewritten, applied, err := Rewrite(naive)
	if err != nil || !applied {
		t.Fatalf("rewrite: applied=%v err=%v", applied, err)
	}
	breakers := plan.Breakers(rewritten)
	if len(breakers) != 1 {
		t.Fatalf("breakers = %d, want 1", len(breakers))
	}
	if _, ok := breakers[0].(*plan.GroupBy); !ok {
		t.Errorf("breaker = %T, want *plan.GroupBy", breakers[0])
	}
}
