package dblpgen

import (
	"strings"
	"testing"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Articles: 200, Seed: 7}
	a, sa := Generate(cfg)
	b, sb := Generate(cfg)
	if !xmltree.Equal(a, b) {
		t.Error("same config must generate identical trees")
	}
	if sa != sb {
		t.Errorf("stats differ: %v vs %v", sa, sb)
	}
	c, _ := Generate(Config{Articles: 200, Seed: 8})
	if xmltree.Equal(a, c) {
		t.Error("different seeds should generate different trees")
	}
}

func TestGenerateShape(t *testing.T) {
	root, stats := Generate(Config{Articles: 500, Seed: 1})
	if root.Tag != "doc_root" {
		t.Errorf("root = %s", root.Tag)
	}
	arts := root.ChildrenTagged("article")
	if len(arts) != 500 {
		t.Fatalf("articles = %d", len(arts))
	}
	if stats.Articles != 500 || stats.Nodes != root.Size() {
		t.Errorf("stats = %+v", stats)
	}

	multi, none := 0, 0
	sharedAuthors := map[string]int{}
	for _, art := range arts {
		aus := art.ChildrenTagged("author")
		if len(aus) > 1 {
			multi++
		}
		if len(aus) == 0 {
			none++
		}
		seen := map[string]bool{}
		for _, au := range aus {
			if seen[au.Content] {
				t.Fatalf("duplicate author %q within one article", au.Content)
			}
			seen[au.Content] = true
			sharedAuthors[au.Content]++
		}
		if art.Child("title") == nil || art.Child("year") == nil || art.Child("journal") == nil {
			t.Fatal("article missing metadata children")
		}
	}
	if multi == 0 {
		t.Error("no multi-author articles — grouping overlap untested")
	}
	// Zipf skew: at least one author appears in many articles.
	max := 0
	for _, n := range sharedAuthors {
		if n > max {
			max = n
		}
	}
	if max < 5 {
		t.Errorf("most prolific author has %d articles; expected Zipf head", max)
	}
	if stats.DistinctAuthors >= stats.AuthorElements {
		t.Error("authors should repeat across articles")
	}
}

func TestGenerateInstitutions(t *testing.T) {
	root, _ := Generate(Config{Articles: 100, Seed: 3, WithInstitutions: true, Institutions: 5})
	insts := root.Find("institution")
	if len(insts) == 0 {
		t.Fatal("no institutions generated")
	}
	distinct := map[string]bool{}
	for _, n := range insts {
		distinct[n.Content] = true
		if n.Parent.Tag != "author" {
			t.Fatal("institution must nest inside author")
		}
	}
	if len(distinct) > 5 {
		t.Errorf("distinct institutions = %d, want <= 5", len(distinct))
	}
}

func TestGenerateTransactionTitles(t *testing.T) {
	root, _ := Generate(Config{Articles: 2000, Seed: 9})
	found := 0
	for _, ti := range root.Find("title") {
		if strings.Contains(ti.Content, "Transaction") {
			found++
		}
	}
	if found == 0 {
		t.Error("no Transaction titles; the Figure 1 pattern would have no matches")
	}
	if found > 200 {
		t.Errorf("Transaction titles = %d, should be rare", found)
	}
}

func TestGenerateToDB(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PageSize: 1024, PoolPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	stats, err := GenerateToDB(db, Config{Articles: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	posts, err := db.TagPostings("article")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != stats.Articles {
		t.Errorf("stored articles = %d, want %d", len(posts), stats.Articles)
	}
	aus, err := db.TagPostings("author")
	if err != nil {
		t.Fatal(err)
	}
	if len(aus) != stats.AuthorElements {
		t.Errorf("stored authors = %d, want %d", len(aus), stats.AuthorElements)
	}
	if s := stats.String(); !strings.Contains(s, "articles") {
		t.Error("stats string")
	}
}

func TestFullPaperScaleConfig(t *testing.T) {
	cfg := FullPaperScale()
	if cfg.Articles < 400_000 {
		t.Errorf("full scale articles = %d", cfg.Articles)
	}
	// Sanity check the node estimate on a sample: ~10+ nodes/article.
	_, stats := Generate(Config{Articles: 1000, Seed: cfg.Seed})
	perArticle := float64(stats.Nodes) / 1000
	if perArticle < 8 || perArticle > 13 {
		t.Errorf("nodes per article = %.1f, want ~10.5 to hit 4.6M at full scale", perArticle)
	}
}
