// Package dblpgen generates synthetic DBLP-Journals documents with the
// structural properties the paper's experiments depend on: article
// elements with a *varying* number of author sub-elements (repeated and
// occasionally missing — the heterogeneity motivating the paper),
// authors shared across articles with a Zipf-like productivity skew,
// and the usual bibliographic clutter (title, year, journal, volume,
// pages) that a projection must be able to ignore.
//
// The paper loaded the Journals portion of DBLP: 4.6 million nodes in
// about 100 MB. Generation is deterministic for a given Config, so
// experiments are reproducible; Config.Articles scales the database
// from unit-test size to the paper's full size (see FullPaperScale).
package dblpgen

import (
	"fmt"
	"math/rand"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

// Config parameterizes generation.
type Config struct {
	// Articles is the number of article elements.
	Articles int
	// AuthorPool is the number of distinct author names; authors are
	// assigned to articles with a Zipf-like skew (a few prolific
	// authors, a long tail). Defaults to Articles/2.
	AuthorPool int
	// MaxAuthorsPerArticle bounds the authors of one article (min 0 —
	// some articles have no author element at all, as the paper's
	// introduction notes). Defaults to 4.
	MaxAuthorsPerArticle int
	// NoAuthorFraction is the per-mille rate of author-less articles.
	// Defaults to 5 (0.5%).
	NoAuthorFraction int
	// WithInstitutions nests an institution element inside each author,
	// enabling the introduction's group-by-institution queries.
	WithInstitutions bool
	// Institutions is the number of distinct institutions (default 50).
	Institutions int
	// Seed drives the deterministic generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.AuthorPool == 0 {
		c.AuthorPool = c.Articles/2 + 1
	}
	if c.MaxAuthorsPerArticle == 0 {
		c.MaxAuthorsPerArticle = 4
	}
	if c.NoAuthorFraction == 0 {
		c.NoAuthorFraction = 5
	}
	if c.Institutions == 0 {
		c.Institutions = 50
	}
	return c
}

// FullPaperScale returns the configuration approximating the paper's
// dataset: ~4.6 million nodes. With ~10.5 nodes per article (authors
// plus six metadata children plus the article node), that is about
// 440,000 articles.
func FullPaperScale() Config {
	return Config{Articles: 440_000, Seed: 2002}
}

// FullPaperScale10x returns a configuration ten times the paper's
// dataset (~46 million nodes) for headroom experiments. Building it
// takes tens of minutes and several GB of working memory; the
// benchmark ladder gates it behind an explicit flag.
func FullPaperScale10x() Config {
	return Config{Articles: 4_400_000, Seed: 2002}
}

// Stats summarizes a generated document.
type Stats struct {
	Articles        int
	AuthorElements  int
	DistinctAuthors int
	Nodes           int
}

func (s Stats) String() string {
	return fmt.Sprintf("%d articles, %d author elements (%d distinct), %d nodes",
		s.Articles, s.AuthorElements, s.DistinctAuthors, s.Nodes)
}

// Generate builds the document tree. The root is tagged doc_root, as
// the plan translator expects.
func Generate(cfg Config) (*xmltree.Node, Stats) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.3, 2, uint64(cfg.AuthorPool-1))

	root := xmltree.E("doc_root")
	stats := Stats{Articles: cfg.Articles}
	used := make(map[int]bool, cfg.AuthorPool)

	for i := 0; i < cfg.Articles; i++ {
		art := xmltree.E("article")
		nAuthors := rng.Intn(cfg.MaxAuthorsPerArticle) + 1
		if rng.Intn(1000) < cfg.NoAuthorFraction {
			nAuthors = 0
		}
		seen := map[int]bool{}
		for a := 0; a < nAuthors; a++ {
			id := int(zipf.Uint64())
			if seen[id] {
				continue // keep author values distinct within an article
			}
			seen[id] = true
			used[id] = true
			au := xmltree.Elem("author", authorName(id))
			if cfg.WithInstitutions {
				au.Append(xmltree.Elem("institution", institutionName(id%cfg.Institutions)))
			}
			art.Append(au)
			stats.AuthorElements++
		}
		art.Append(
			xmltree.Elem("title", makeTitle(rng)),
			xmltree.Elem("year", fmt.Sprintf("%d", 1970+rng.Intn(33))),
			xmltree.Elem("journal", journals[rng.Intn(len(journals))]),
			xmltree.Elem("volume", fmt.Sprintf("%d", 1+rng.Intn(40))),
			xmltree.Elem("pages", fmt.Sprintf("%d-%d", 1+rng.Intn(400), 401+rng.Intn(400))),
			xmltree.Elem("ee", fmt.Sprintf("db/journals/x/%d.html", i)),
		)
		root.Append(art)
	}
	stats.DistinctAuthors = len(used)
	stats.Nodes = root.Size()
	return root, stats
}

// GenerateToDB generates and loads the document into the database.
func GenerateToDB(db *storage.DB, cfg Config) (Stats, error) {
	root, stats := Generate(cfg)
	if _, err := db.LoadDocument("dblp-journals.xml", root); err != nil {
		return Stats{}, err
	}
	return stats, nil
}

// authorName renders a stable, human-looking author name for an ID.
func authorName(id int) string {
	first := firstNames[id%len(firstNames)]
	last := lastNames[(id/len(firstNames))%len(lastNames)]
	return fmt.Sprintf("%s %s %d", first, last, id)
}

func institutionName(id int) string {
	return fmt.Sprintf("University %d", id)
}

// makeTitle samples a 3–8 word title; roughly 2% contain the word
// "Transaction", so the Figure 1 selection pattern has matches.
func makeTitle(rng *rand.Rand) string {
	n := 3 + rng.Intn(6)
	title := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			title += " "
		}
		title += titleWords[rng.Intn(len(titleWords))]
	}
	if rng.Intn(50) == 0 {
		title += " Transaction Management"
	}
	return title
}

var firstNames = []string{
	"Ada", "Alan", "Barbara", "Claude", "Divesh", "Edsger", "Grace",
	"Hector", "Jagadish", "Jim", "Laks", "Leslie", "Michael", "Moshe",
	"Pat", "Raghu", "Serge", "Stelios", "Yuqing", "Zohar",
}

var lastNames = []string{
	"Al-Khalifa", "Codd", "DeWitt", "Garcia-Molina", "Gray", "Hopper",
	"Jagadish", "Lakshmanan", "Lovelace", "Nierman", "Paparizos",
	"Silberschatz", "Srivastava", "Stonebraker", "Thompson", "Ullman",
	"Vardi", "Widom", "Wu", "Zaniolo",
}

var titleWords = []string{
	"Adaptive", "Algebra", "Algorithms", "Approximate", "Caching",
	"Concurrency", "Containment", "Databases", "Distributed",
	"Efficient", "Estimation", "Evaluation", "Grouping", "Indexing",
	"Integration", "Joins", "Locking", "Logic", "Management", "Mining",
	"Models", "Optimization", "Parallel", "Patterns", "Performance",
	"Processing", "Queries", "Recovery", "Relational", "Scalable",
	"Schemas", "Semantics", "Semistructured", "Storage", "Streams",
	"Structural", "Systems", "Trees", "Views", "XML",
}

var journals = []string{
	"TODS", "VLDB Journal", "SIGMOD Record", "TKDE", "Information Systems",
	"Data Engineering Bulletin", "Acta Informatica", "JACM",
}
