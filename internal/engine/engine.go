// Package engine is the unified query facade: the one entry point that
// owns the whole pipeline of the paper — parse (internal/xq), naive
// TAX plan (internal/plan), GROUPBY rewrite (internal/opt), physical
// execution (internal/exec) — behind a prepare/execute split. Prepare
// runs the one-time compilation stages and caches the result in an LRU
// keyed by query text; Execute runs a prepared plan under per-call
// options (strategy, parallelism, tracing, context cancellation), so a
// long-lived server pays parse + optimize once per distinct query and
// pure execution cost thereafter.
//
// Concurrency: an Engine and its PreparedQueries are safe for
// concurrent use. Compiled plans are immutable after Prepare; per-run
// state lives in the executors, and the storage layer's read paths and
// spill region are concurrency-safe (see storage.DB).
package engine

import (
	"container/list"
	"context"
	"strings"
	"sync"
	"time"

	"timber/internal/exec"
	"timber/internal/match"
	"timber/internal/obs"
	"timber/internal/opt"
	"timber/internal/opt/planner"
	"timber/internal/pattern"
	"timber/internal/plan"
	"timber/internal/stats"
	"timber/internal/storage"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

// DefaultCacheSize is the prepared-plan cache capacity when Options
// does not set one.
const DefaultCacheSize = 128

// Options configures an Engine.
type Options struct {
	// CacheSize bounds the prepared-plan LRU (distinct query texts).
	// 0 means DefaultCacheSize; negative disables caching.
	CacheSize int
	// Parallelism is the default worker bound for executions that do
	// not set their own (0 = GOMAXPROCS, 1 = sequential).
	Parallelism int
	// Metrics receives the engine's counters (cache hits/misses/
	// evictions, executions, errors). Nil means the engine counts into
	// a private registry; Registry() returns whichever is in use.
	Metrics *obs.Registry
}

// Engine binds a database to a prepared-plan cache. Create with New.
type Engine struct {
	db   *storage.DB
	opts Options
	reg  *obs.Registry

	mu     sync.Mutex
	lru    *list.List // *PreparedQuery, front = most recently used
	byText map[string]*list.Element

	hits      *obs.Metric
	misses    *obs.Metric
	evictions *obs.Metric
	execs     *obs.Metric
	execErrs  *obs.Metric

	// Latency families (all in seconds, log-bucketed):
	// querySeconds is end-to-end Execute latency labeled by the
	// strategy that actually ran; prepareSeconds splits Prepare latency
	// by plan-cache outcome, making cache effectiveness visible as a
	// latency distribution rather than just a hit count; strategyTotal
	// counts executions per chosen strategy (after fallback).
	querySeconds   *obs.HistogramVec
	prepareSeconds *obs.HistogramVec
	strategyTotal  *obs.CounterVec

	// Planner family: plannerPicks counts cost-based decisions by
	// chosen strategy (auto executions only — explicit strategies are
	// overrides, not picks); plannerEstErr distributes the planner's
	// relative cardinality-estimation error, measured against the
	// actuals of the run it planned; matcherPicks counts the planner's
	// pattern-matcher decisions on the physical path by chosen matcher.
	plannerPicks  *obs.CounterVec
	plannerEstErr *obs.HistogramVec
	matcherPicks  *obs.CounterVec

	// Cardinality-statistics cache for the planner, revalidated by
	// storage epoch (any commit moves the epoch, so a hit can never
	// serve statistics from before a data change).
	statsMu    sync.Mutex
	statsCat   *stats.Catalog
	statsEpoch uint64
	statsOK    bool
}

// estErrBuckets bound the planner's relative estimation error
// histogram: |estimate - actual| / max(actual, 1).
var estErrBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10}

// New creates an engine over db.
func New(db *storage.DB, opts Options) *Engine {
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	db.RegisterMetrics(reg)
	return &Engine{
		db:        db,
		opts:      opts,
		reg:       reg,
		lru:       list.New(),
		byText:    map[string]*list.Element{},
		hits:      reg.Counter("engine_plan_cache_hits"),
		misses:    reg.Counter("engine_plan_cache_misses"),
		evictions: reg.Counter("engine_plan_cache_evictions"),
		execs:     reg.Counter("engine_executions"),
		execErrs:  reg.Counter("engine_execution_errors"),
		querySeconds: reg.HistogramVec("engine_query_seconds",
			"End-to-end Execute latency by the strategy that ran.",
			obs.DefaultLatencyBuckets, "strategy"),
		prepareSeconds: reg.HistogramVec("engine_prepare_seconds",
			"Prepare latency split by plan-cache outcome.",
			obs.DefaultLatencyBuckets, "cache"),
		strategyTotal: reg.CounterVec("engine_strategy_total",
			"Executions by chosen strategy (after fallback).", "strategy"),
		plannerPicks: reg.CounterVec("planner_picks_total",
			"Cost-based planner decisions by chosen strategy (auto executions).", "strategy"),
		plannerEstErr: reg.HistogramVec("planner_estimate_error",
			"Relative error of planner cardinality estimates vs actuals.",
			estErrBuckets, "quantity"),
		matcherPicks: reg.CounterVec("planner_matcher_picks_total",
			"Cost-based planner pattern-matcher decisions by chosen matcher (auto executions).", "matcher"),
	}
}

// DB returns the engine's database.
func (e *Engine) DB() *storage.DB { return e.db }

// Registry returns the registry the engine counts into — the one from
// Options.Metrics, or the engine's private one.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// CacheStats is a point-in-time view of the prepared-plan cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// CacheStats returns the cache counters and current occupancy.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	size := e.lru.Len()
	e.mu.Unlock()
	return CacheStats{
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Evictions: e.evictions.Load(),
		Size:      size,
		Capacity:  e.opts.CacheSize,
	}
}

// PreparedQuery is a compiled query: the parse and optimize stages run
// once, at Prepare time, and the results are immutable thereafter.
type PreparedQuery struct {
	eng *Engine
	// Text is the source query.
	Text string
	// Naive is the Sec. 4.1 translation of the query.
	Naive plan.Op
	// Rewritten is the GROUPBY rewrite of Naive when Applied, else
	// Naive itself.
	Rewritten plan.Op
	// Applied reports whether the grouping idiom was detected and the
	// rewrite produced Rewritten.
	Applied bool
	// Spec is the physical grouping-query description derived from
	// Rewritten; valid only when Applied.
	Spec exec.Spec
	// Pattern is the first pattern tree the physical plan embeds into
	// the database (the deepest Select over a DBScan leaf), the input
	// to the planner's matcher choice. Nil when the plan has no indexed
	// leaf selection.
	Pattern *pattern.Tree
}

// Prepare compiles the query, consulting the plan cache: a hit returns
// the previously compiled PreparedQuery without re-running parse or
// optimize.
func (e *Engine) Prepare(query string) (*PreparedQuery, error) {
	pq, _, err := e.PrepareCached(query)
	return pq, err
}

// PrepareCached is Prepare plus a report of whether the plan came from
// the cache.
func (e *Engine) PrepareCached(query string) (*PreparedQuery, bool, error) {
	start := time.Now()
	if pq := e.lookup(query); pq != nil {
		e.hits.Inc()
		e.prepareSeconds.With("hit").ObserveDuration(time.Since(start))
		return pq, true, nil
	}
	e.misses.Inc()
	pq, err := e.compile(query)
	if err != nil {
		return nil, false, err
	}
	e.prepareSeconds.With("miss").ObserveDuration(time.Since(start))
	return e.insert(pq), false, nil
}

func (e *Engine) lookup(query string) *PreparedQuery {
	if e.opts.CacheSize < 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.byText[query]
	if !ok {
		return nil
	}
	e.lru.MoveToFront(el)
	return el.Value.(*PreparedQuery)
}

// insert files a freshly compiled plan, evicting the least recently
// used entry past capacity. If a concurrent Prepare of the same text
// got there first, its entry wins and is returned — both plans are
// equivalent, and keeping the incumbent preserves pointer identity for
// earlier callers.
func (e *Engine) insert(pq *PreparedQuery) *PreparedQuery {
	if e.opts.CacheSize < 0 {
		return pq
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.byText[pq.Text]; ok {
		e.lru.MoveToFront(el)
		return el.Value.(*PreparedQuery)
	}
	e.byText[pq.Text] = e.lru.PushFront(pq)
	for e.lru.Len() > e.opts.CacheSize {
		victim := e.lru.Back()
		e.lru.Remove(victim)
		delete(e.byText, victim.Value.(*PreparedQuery).Text)
		e.evictions.Inc()
	}
	return pq
}

// compile runs the one-time pipeline stages: parse, translate,
// rewrite, and (when the rewrite applies) Spec derivation.
func (e *Engine) compile(query string) (*PreparedQuery, error) {
	ast, err := xq.Parse(query)
	if err != nil {
		return nil, err
	}
	naive, err := plan.Translate(ast)
	if err != nil {
		return nil, err
	}
	rewritten, applied, err := opt.Rewrite(naive)
	if err != nil {
		return nil, err
	}
	pq := &PreparedQuery{eng: e, Text: query, Naive: naive, Rewritten: rewritten, Applied: applied}
	pq.Pattern = patternOf(rewritten)
	if !applied {
		pq.Rewritten = naive
		pq.Pattern = patternOf(naive)
		return pq, nil
	}
	spec, err := exec.SpecFromPlan(rewritten)
	if err != nil {
		// The rewrite applied but the physical Spec does not cover the
		// query shape; the generic physical plan still can.
		pq.Applied = false
		return pq, nil
	}
	pq.Spec = spec
	return pq, nil
}

// ExecOptions are the per-execution knobs of a prepared query.
type ExecOptions struct {
	// Strategy selects the physical plan. The zero value,
	// exec.StrategyAuto, hands the choice to the cost-based planner:
	// the engine costs the candidate plans against the database's
	// cardinality statistics (building them on first use) and runs the
	// cheapest; Result.Strategy reports what ran. An explicit strategy
	// is an override. Spec-level strategies (groupby, direct, ...)
	// require the grouping rewrite; when it did not apply they fall
	// back to the generic physical plan, so every value always works.
	// StrategyLogical forces the in-memory reference evaluator.
	Strategy exec.Strategy
	// Parallelism overrides the engine default when non-zero.
	Parallelism int
	// MaxMaterializeBytes caps the output content the streaming
	// executor's late-materialize sink may fetch; a run that would
	// exceed it fails with exec.ErrMaterializeLimit and returns no
	// partial output. 0 means unlimited.
	MaxMaterializeBytes int64
	// SortMemRows bounds the streaming GROUPBY sort's in-memory
	// buffer; past it, sorted runs spill through the storage spool.
	// 0 means never spill.
	SortMemRows int
	// Tracer, when non-nil, collects the run's span tree. Use only on
	// solo runs over reset counters — the exactness invariant cannot
	// hold when concurrent queries share the storage counters.
	Tracer *obs.Tracer
	// Matcher selects the pattern-matching algorithm for the physical
	// plan's indexed leaf selections. The zero value,
	// match.MatcherAuto, hands the choice to the cost-based planner
	// (holistic twig join vs cascaded binary joins, costed on the same
	// cardinality statistics the strategy choice uses); an explicit
	// matcher is an override. Results are byte-identical either way —
	// only the index access pattern changes.
	Matcher match.MatcherKind
}

// Result is one execution's outcome.
type Result struct {
	// Trees are the materialized result elements.
	Trees []*xmltree.Node
	// Stats itemizes the plan's data accesses (Spec-level strategies
	// only; zero for logical/physical plan evaluation).
	Stats exec.ExecStats
	// Strategy is the plan that actually ran (after fallback).
	Strategy exec.Strategy
	// Matcher is the pattern-matching algorithm the physical path ran
	// (auto for strategies that do not run package match's matchers).
	Matcher match.MatcherKind
}

// Execute runs the prepared plan. ctx cancellation and deadlines are
// observed promptly — between operator phases, between worker chunk
// claims, and per item inside sequential scans — and a cancelled run
// returns ctx.Err() without corrupting shared storage state.
func (pq *PreparedQuery) Execute(ctx context.Context, o ExecOptions) (*Result, error) {
	start := time.Now()
	res, err := pq.execute(ctx, o)
	pq.eng.execs.Inc()
	j := pq.eng.db.Journal()
	if err != nil {
		pq.eng.execErrs.Inc()
		j.Emit(obs.Event{
			Type:  obs.EvQueryError,
			QID:   obs.QueryIDFrom(ctx),
			DurNS: time.Since(start).Nanoseconds(),
			Err:   err.Error(),
		})
		return nil, err
	}
	strat := res.Strategy.String()
	pq.eng.querySeconds.With(strat).ObserveDuration(time.Since(start))
	pq.eng.strategyTotal.With(strat).Inc()
	j.Emit(obs.Event{
		Type:  obs.EvQueryDone,
		QID:   obs.QueryIDFrom(ctx),
		Epoch: pq.eng.db.Epoch(),
		DurNS: time.Since(start).Nanoseconds(),
		Count: int64(len(res.Trees)),
		Aux:   int64(res.Stats.ValueLookups),
		Bytes: int64(res.Stats.IndexPostings),
		Label: strat,
	})
	return res, nil
}

// resolvePlan maps the requested strategy to the one to run: the
// planner decides for StrategyAuto on grouping queries (returning its
// Decision); queries outside the grouping family fall back to the
// generic physical plan as before.
func (pq *PreparedQuery) resolvePlan(requested exec.Strategy) (exec.Strategy, *planner.Decision) {
	if !pq.Applied && requested != exec.StrategyLogical && requested != exec.StrategyPhysical {
		return exec.StrategyPhysical, nil
	}
	if requested == exec.StrategyAuto {
		dec := planner.Choose(pq.eng.cardStats(), pq.Spec)
		return dec.Strategy, dec
	}
	return requested, nil
}

// resolveMatcher maps the requested matcher to the one to run: the
// planner decides for match.MatcherAuto when the plan embeds a pattern
// (returning its MatcherDecision); an explicit matcher is an override.
func (pq *PreparedQuery) resolveMatcher(requested match.MatcherKind) (match.MatcherKind, *planner.MatcherDecision) {
	if requested != match.MatcherAuto || pq.Pattern == nil {
		return requested, nil
	}
	dec := planner.ChooseMatcher(pq.eng.cardStats(), pq.Pattern)
	return dec.Matcher, dec
}

// patternOf finds the pattern tree the physical evaluation will match
// against the database: the deepest Select whose input is the DBScan
// leaf. Plans without one (pure literals, naive joins) return nil.
func patternOf(op plan.Op) *pattern.Tree {
	switch o := op.(type) {
	case *plan.Select:
		if _, ok := o.In.(*plan.DBScan); ok {
			return o.Pattern
		}
		return patternOf(o.In)
	case *plan.Project:
		return patternOf(o.In)
	case *plan.ProjectPerTree:
		return patternOf(o.In)
	case *plan.DupElimContent:
		return patternOf(o.In)
	case *plan.DedupChildren:
		return patternOf(o.In)
	case *plan.SortChildrenByPath:
		return patternOf(o.In)
	case *plan.GroupBy:
		return patternOf(o.In)
	case *plan.Aggregate:
		return patternOf(o.In)
	case *plan.Rename:
		return patternOf(o.In)
	case *plan.LeftOuterJoin:
		if pt := patternOf(o.Left); pt != nil {
			return pt
		}
		return patternOf(o.Right)
	case *plan.Stitch:
		for _, p := range o.Parts {
			if pt := patternOf(p.Op); pt != nil {
				return pt
			}
		}
	}
	return nil
}

// cardStats returns the database's cardinality statistics for the
// planner, building them transactionally on first use (or after an
// offline bulk load left them stale) and caching per storage epoch.
// Returns nil when statistics cannot be obtained at all — the planner
// then falls back to the default strategy.
func (e *Engine) cardStats() *stats.Catalog {
	epoch := e.db.Epoch()
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if e.statsOK && e.statsEpoch == epoch {
		return e.statsCat
	}
	cat, err := e.db.CardStats()
	if err != nil || !cat.Fresh {
		// Absent or stale: run the ANALYZE scan. Durability is not worth
		// an fsync on the query path — statistics rebuild on demand.
		if built, berr := e.db.BuildCardStats(storage.SyncNone); berr == nil {
			cat = built
		} else if err != nil {
			cat = nil // none persisted and the build failed
		}
	}
	e.statsCat, e.statsEpoch, e.statsOK = cat, e.db.Epoch(), true
	return cat
}

// observePlan records the planner observations for one auto execution:
// the pick (counter + plan_decision event) and the relative estimation
// error against the run's actuals (histogram + plan_estimate event, so
// a mis-estimate is inspectable per query, not just in aggregate).
func (e *Engine) observePlan(qid string, dec *planner.Decision, strat exec.Strategy, res *Result) {
	if dec == nil {
		return
	}
	e.plannerPicks.With(strat.String()).Inc()
	j := e.db.Journal()
	var cost float64
	if len(dec.Candidates) > 0 {
		cost = dec.Candidates[0].Cost
	}
	j.Emit(obs.Event{
		Type:  obs.EvPlanDecision,
		QID:   qid,
		Label: strat.String(),
		Value: cost,
		Count: int64(len(dec.Candidates)),
	})
	if dec.StatsUsed && res != nil {
		actual := float64(res.Stats.Groups)
		err := relErr(dec.Groups, actual)
		e.plannerEstErr.With("groups").Observe(err)
		j.Emit(obs.Event{
			Type:  obs.EvPlanEstimate,
			QID:   qid,
			Label: "groups",
			Count: int64(dec.Groups),
			Aux:   int64(actual),
			Value: err,
		})
	}
}

// observeMatcher records one planner matcher decision: the pick
// counter plus a plan_decision journal event labeled
// "matcher:<name>", distinguishing matcher picks from strategy picks
// in the same event stream. Overrides (nil decision) record nothing —
// they are the caller's choice, not the planner's.
func (e *Engine) observeMatcher(qid string, dec *planner.MatcherDecision) {
	if dec == nil {
		return
	}
	e.matcherPicks.With(dec.Matcher.String()).Inc()
	var cost float64
	if len(dec.Candidates) > 0 {
		cost = dec.Candidates[0].Cost
	}
	e.db.Journal().Emit(obs.Event{
		Type:  obs.EvPlanDecision,
		QID:   qid,
		Label: "matcher:" + dec.Matcher.String(),
		Value: cost,
		Count: int64(len(dec.Candidates)),
	})
}

// relErr is the relative estimation error |est-actual| / max(actual, 1).
func relErr(est, actual float64) float64 {
	diff := est - actual
	if diff < 0 {
		diff = -diff
	}
	if actual < 1 {
		actual = 1
	}
	return diff / actual
}

func (pq *PreparedQuery) execute(ctx context.Context, o ExecOptions) (*Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	par := o.Parallelism
	if par == 0 {
		par = pq.eng.opts.Parallelism
	}
	xo := exec.Options{
		Parallelism:         par,
		MaxMaterializeBytes: o.MaxMaterializeBytes,
		SortMemRows:         o.SortMemRows,
		Tracer:              o.Tracer,
		Ctx:                 ctx,
		Metrics:             pq.eng.reg,
		Journal:             pq.eng.db.Journal(),
	}
	strat, dec := pq.resolvePlan(o.Strategy)
	switch strat {
	case exec.StrategyLogical:
		out, err := exec.ExecLogical(pq.eng.db, pq.Naive)
		if err != nil {
			return nil, err
		}
		return &Result{Trees: out.Trees, Strategy: strat}, nil
	case exec.StrategyPhysical:
		mkind, mdec := pq.resolveMatcher(o.Matcher)
		xo.Matcher = mkind
		out, err := exec.ExecPhysical(pq.eng.db, pq.Rewritten, xo)
		if err != nil {
			return nil, err
		}
		pq.eng.observeMatcher(obs.QueryIDFrom(ctx), mdec)
		return &Result{Trees: out.Trees, Strategy: strat, Matcher: mkind}, nil
	default:
		spec := pq.Spec
		spec.Strategy = strat
		res, err := exec.Run(pq.eng.db, spec, xo)
		if err != nil {
			return nil, err
		}
		out := &Result{Trees: res.Trees, Stats: res.Stats, Strategy: strat}
		pq.eng.observePlan(obs.QueryIDFrom(ctx), dec, strat, out)
		return out, nil
	}
}

// Query is Prepare + Execute in one call — the convenience path for
// callers that do not hold on to the prepared plan.
func (e *Engine) Query(ctx context.Context, query string, o ExecOptions) (*Result, error) {
	pq, err := e.Prepare(query)
	if err != nil {
		return nil, err
	}
	return pq.Execute(ctx, o)
}

// Serialize renders the result trees as concatenated XML documents —
// the byte format timber-query prints and timber-serve returns, kept
// in one place so the two agree byte for byte.
func (r *Result) Serialize() string {
	var b strings.Builder
	for _, tr := range r.Trees {
		b.WriteString(xmltree.SerializeString(tr))
	}
	return b.String()
}
