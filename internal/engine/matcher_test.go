package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"timber/internal/dblpgen"
	"timber/internal/exec"
	"timber/internal/match"
	"timber/internal/obs"
	"timber/internal/paperdata"
	"timber/internal/storage"
)

// TestMatcherByteIdenticalAcrossMatchers is the tentpole acceptance
// check at the engine level: the physical plan under every matcher, at
// parallelism 1 and 4, serializes byte-identically — the matcher
// changes access patterns, never answers. Covers both the grouping
// query (physical forced) and the non-grouping fallback.
func TestMatcherByteIdenticalAcrossMatchers(t *testing.T) {
	e := sampleEngine(t, Options{})
	ctx := context.Background()
	for _, src := range []string{query1, nonGrouping} {
		pq, err := e.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		if pq.Pattern == nil {
			t.Fatal("prepared plan lost its pattern tree")
		}
		base, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyPhysical, Matcher: match.MatcherBinary, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if base.Matcher != match.MatcherBinary {
			t.Errorf("binary override ran %v", base.Matcher)
		}
		want := base.Serialize()
		for _, kind := range []match.MatcherKind{match.MatcherAuto, match.MatcherBinary, match.MatcherTwig} {
			for _, par := range []int{1, 4} {
				res, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyPhysical, Matcher: kind, Parallelism: par})
				if err != nil {
					t.Fatalf("matcher=%v p=%d: %v", kind, par, err)
				}
				if res.Serialize() != want {
					t.Errorf("matcher=%v p=%d: output differs from binary baseline", kind, par)
				}
				if kind != match.MatcherAuto && res.Matcher != kind {
					t.Errorf("requested matcher %v, result reports %v", kind, res.Matcher)
				}
			}
		}
	}
}

// TestAutoMatcherObserved: an auto physical execution records the
// planner's matcher pick — the planner_matcher_picks_total counter and
// a plan_decision journal event labeled "matcher:<name>" — while an
// explicit override records neither.
func TestAutoMatcherObserved(t *testing.T) {
	journal := obs.NewJournal(256)
	db, err := storage.CreateTemp(storage.Options{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	e := New(db, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyPhysical})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matcher == match.MatcherAuto {
		t.Error("auto execution did not resolve to a concrete matcher")
	}
	picks := e.Registry().CounterVec("planner_matcher_picks_total", "", "matcher")
	if got := picks.With(res.Matcher.String()).Load(); got != 1 {
		t.Errorf("planner_matcher_picks_total{%s} = %d, want 1", res.Matcher, got)
	}
	var matcherEvents int
	for _, ev := range journal.Events(obs.EventFilter{Types: []obs.EventType{obs.EvPlanDecision}}) {
		if strings.HasPrefix(ev.Label, "matcher:") {
			matcherEvents++
			if ev.Label != "matcher:"+res.Matcher.String() {
				t.Errorf("plan_decision label = %q, want matcher:%s", ev.Label, res.Matcher)
			}
			if ev.Count != 2 {
				t.Errorf("plan_decision candidates = %d, want 2", ev.Count)
			}
		}
	}
	if matcherEvents != 1 {
		t.Errorf("matcher plan_decision events = %d, want 1", matcherEvents)
	}

	// An override is the caller's choice, not a planner pick.
	if _, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyPhysical, Matcher: match.MatcherBinary}); err != nil {
		t.Fatal(err)
	}
	if got := picks.With(match.MatcherBinary.String()).Load() + picks.With(match.MatcherTwig.String()).Load(); got != 1 {
		t.Errorf("override incremented planner_matcher_picks_total (total %d, want 1)", got)
	}
}

// TestExplainReportsMatcher: EXPLAIN surfaces the planner's matcher
// choice — candidates cost-sorted, the chosen matcher cheapest, the
// join order over the pattern labels — in both the struct and the
// text rendering, and an override shows up as the matcher with no
// candidates.
func TestExplainReportsMatcher(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	x := pq.Explain(ExecOptions{})
	if x.Matcher != "binary" && x.Matcher != "twig" {
		t.Fatalf("Explain matcher = %q, want a concrete pick", x.Matcher)
	}
	if len(x.MatcherCandidates) != 2 {
		t.Fatalf("matcher candidates = %+v, want 2", x.MatcherCandidates)
	}
	if x.MatcherCandidates[0].Cost > x.MatcherCandidates[1].Cost {
		t.Errorf("matcher candidates not cost-sorted: %+v", x.MatcherCandidates)
	}
	if x.MatcherCandidates[0].Matcher != x.Matcher {
		t.Errorf("chose %q but cheapest matcher candidate is %q", x.Matcher, x.MatcherCandidates[0].Matcher)
	}
	if len(x.JoinOrder) == 0 {
		t.Error("Explain reports no join order")
	}
	txt := x.Text()
	if !strings.Contains(txt, "matcher: "+x.Matcher) || !strings.Contains(txt, "matcher candidates:") {
		t.Errorf("Text() missing matcher lines:\n%s", txt)
	}

	forced := pq.Explain(ExecOptions{Matcher: match.MatcherBinary})
	if forced.Matcher != "binary" {
		t.Errorf("override explain matcher = %q, want binary", forced.Matcher)
	}
	if len(forced.MatcherCandidates) != 0 {
		t.Errorf("override explain lists planner candidates: %+v", forced.MatcherCandidates)
	}
}

// TestMatcherPickNeverFarFromBest is the matcher sibling of
// TestPlannerPickNeverFarFromBest: on a bench-style fixture the
// planner-picked matcher must not run slower than 1.5x the best
// explicit matcher (min-of-3 wall times to damp scheduler noise).
func TestMatcherPickNeverFarFromBest(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	e := New(db, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm the statistics and the buffer pool outside the clock.
	auto, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyPhysical})
	if err != nil {
		t.Fatal(err)
	}

	minWall := func(kind match.MatcherKind) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyPhysical, Matcher: kind}); err != nil {
				t.Fatalf("Execute(matcher=%v): %v", kind, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	walls := map[match.MatcherKind]time.Duration{}
	bestWall := time.Duration(1<<63 - 1)
	for _, kind := range []match.MatcherKind{match.MatcherBinary, match.MatcherTwig} {
		walls[kind] = minWall(kind)
		if walls[kind] < bestWall {
			bestWall = walls[kind]
		}
	}
	picked := minWall(auto.Matcher)
	if float64(picked) > 1.5*float64(bestWall) {
		t.Errorf("planner picked matcher %v at %v; best runs in %v (> 1.5x; walls %v)",
			auto.Matcher, picked, bestWall, walls)
	}
}
