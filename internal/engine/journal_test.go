package engine

import (
	"context"
	"testing"

	"timber/internal/exec"
	"timber/internal/obs"
	"timber/internal/paperdata"
	"timber/internal/storage"
)

// TestJournalByteIdentity: enabling the event journal must not change
// a single result byte — the journal only observes. Two engines over
// identical data, one journaled and one not, must serialize identical
// results for every strategy at parallelism 1 and 4.
func TestJournalByteIdentity(t *testing.T) {
	mk := func(j *obs.Journal) *Engine {
		t.Helper()
		db, err := storage.CreateTemp(storage.Options{Journal: j})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
			t.Fatal(err)
		}
		return New(db, Options{})
	}
	plain := mk(nil)
	journal := obs.NewJournal(1024)
	journaled := mk(journal)

	ctx := context.Background()
	strategies := []exec.Strategy{
		0, // auto: the planner decides
		exec.StrategyGroupBy,
		exec.StrategyDirect,
		exec.StrategyDirectNested,
	}
	for _, par := range []int{1, 4} {
		for _, strat := range strategies {
			o := ExecOptions{Strategy: strat, Parallelism: par}
			pw, err := plain.Prepare(query1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := pw.Execute(ctx, o)
			if err != nil {
				t.Fatalf("plain p=%d strat=%v: %v", par, strat, err)
			}
			pj, err := journaled.Prepare(query1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pj.Execute(ctx, o)
			if err != nil {
				t.Fatalf("journaled p=%d strat=%v: %v", par, strat, err)
			}
			if got.Serialize() != want.Serialize() {
				t.Errorf("p=%d strat=%v: journaled results differ from plain", par, strat)
			}
			if got.Strategy != want.Strategy {
				t.Errorf("p=%d strat=%v: strategy %v != %v", par, strat, got.Strategy, want.Strategy)
			}
		}
	}

	// The comparison is not vacuous: the journaled engine emitted
	// query completions (and flight traces) while producing identical
	// bytes.
	if journal.Seq() == 0 {
		t.Fatal("journaled engine emitted no events")
	}
	done := journal.Events(obs.EventFilter{Types: []obs.EventType{obs.EvQueryDone}})
	if len(done) == 0 {
		t.Error("no query_done events")
	}
	if len(journal.Flights()) == 0 {
		t.Error("no flight records from executor hand-off")
	}
}
