package engine

import (
	"context"
	"errors"
	"testing"

	"timber/internal/exec"
	"timber/internal/xmltree"
)

// The facade is unchanged by the streaming executor refactor: the
// default groupby strategy now runs the iterator pipeline, and its
// results must be byte-identical to the materializing reference
// (groupby-mat) through Prepare/Execute, at every parallelism.
func TestFacadeStreamingMatchesMaterialized(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyGroupByMat})
	if err != nil {
		t.Fatal(err)
	}
	serialize := func(trees []*xmltree.Node) string {
		var s string
		for _, tr := range trees {
			s += xmltree.SerializeString(tr)
		}
		return s
	}
	for _, p := range []int{1, 4} {
		got, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyGroupBy, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if serialize(got.Trees) != serialize(want.Trees) {
			t.Errorf("p=%d: streaming trees differ from materialized", p)
		}
		if got.Stats != want.Stats {
			t.Errorf("p=%d: stats = %+v, want %+v", p, got.Stats, want.Stats)
		}
	}
}

// TestFacadeMaterializeLimit pins the -maxmem plumbing: the cap
// travels ExecOptions → exec.Options, an exceeded budget surfaces
// exec.ErrMaterializeLimit with no result, and a spill-enabled run
// still matches.
func TestFacadeMaterializeLimit(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := pq.Execute(ctx, ExecOptions{MaxMaterializeBytes: 1})
	if !errors.Is(err, exec.ErrMaterializeLimit) {
		t.Fatalf("err = %v, want ErrMaterializeLimit", err)
	}
	if res != nil {
		t.Fatalf("partial result: %+v", res)
	}
	full, err := pq.Execute(ctx, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := pq.Execute(ctx, ExecOptions{SortMemRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(spilled.Trees) != len(full.Trees) || spilled.Stats != full.Stats {
		t.Errorf("spilled run diverged: %+v vs %+v", spilled.Stats, full.Stats)
	}
}
