package engine

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"timber/internal/dblpgen"
	"timber/internal/exec"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// specStrategies are the physical grouping plans the planner chooses
// among plus the ones it can be overridden to.
var specStrategies = []exec.Strategy{
	exec.StrategyGroupBy, exec.StrategyGroupByMat, exec.StrategyDirect,
	exec.StrategyDirectNested, exec.StrategyDirectBatch, exec.StrategyReplicating,
}

// TestAutoRunsPlannerChoice: ExecOptions{} hands the choice to the
// planner — the result reports a concrete Spec-level strategy, the
// answer matches the logical reference, and the planner_picks_total
// metric counts the decision. The sample database arrives via the
// offline bulk loader, so this also exercises the lazy ANALYZE on
// first use.
func TestAutoRunsPlannerChoice(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := pq.Execute(ctx, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var isSpec bool
	for _, s := range specStrategies {
		if res.Strategy == s {
			isSpec = true
		}
	}
	if !isSpec {
		t.Errorf("auto ran %v, want a Spec-level grouping strategy", res.Strategy)
	}
	logical, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyLogical})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(groupRows(res), groupRows(logical)) {
		t.Errorf("auto groups = %v, want %v", groupRows(res), groupRows(logical))
	}
	if got := e.Registry().CounterVec("planner_picks_total", "", "strategy").With(res.Strategy.String()).Load(); got < 1 {
		t.Errorf("planner_picks_total{%s} = %d, want >= 1", res.Strategy, got)
	}
	// The lazy build left fresh statistics behind.
	cat, err := e.DB().CardStats()
	if err != nil {
		t.Fatalf("CardStats after auto execution: %v", err)
	}
	if !cat.Fresh {
		t.Error("statistics still stale after the lazy ANALYZE")
	}
}

// TestAutoByteIdenticalAtBothParallelisms is the acceptance check:
// every strategy (auto included) is byte-identical across parallelism
// 1 and 4, and the auto run is byte-identical to an explicit run of
// the strategy it chose — the planner adds choice, never
// nondeterminism. (Byte-identity *across* plan families is not a
// goal: direct plans emit groups in the paper's first-occurrence
// distinct-values order, groupby plans in sorted order.)
func TestAutoByteIdenticalAtBothParallelisms(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	auto1, err := pq.Execute(ctx, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto4, err := pq.Execute(ctx, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if auto1.Serialize() != auto4.Serialize() {
		t.Error("auto results differ between parallelism 1 and 4")
	}
	if auto1.Strategy != auto4.Strategy {
		t.Errorf("auto picked %v at p=1 but %v at p=4 on unchanged data", auto1.Strategy, auto4.Strategy)
	}
	for _, strat := range specStrategies {
		r1, err := pq.Execute(ctx, ExecOptions{Strategy: strat, Parallelism: 1})
		if err != nil {
			t.Fatalf("Execute(%v p=1): %v", strat, err)
		}
		r4, err := pq.Execute(ctx, ExecOptions{Strategy: strat, Parallelism: 4})
		if err != nil {
			t.Fatalf("Execute(%v p=4): %v", strat, err)
		}
		if r1.Serialize() != r4.Serialize() {
			t.Errorf("%v results differ between parallelism 1 and 4", strat)
		}
		if strat == auto1.Strategy && r1.Serialize() != auto1.Serialize() {
			t.Errorf("auto result differs from explicit %v run", strat)
		}
	}
}

// TestExplainEstimatesOnly: Explain without execution reports the
// chosen plan, cost-sorted candidates, and per-operator estimates with
// actuals unset.
func TestExplainEstimatesOnly(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	x := pq.Explain(ExecOptions{})
	if x.Executed {
		t.Error("Explain reported Executed without running")
	}
	if x.Requested != "auto" {
		t.Errorf("Requested = %q, want auto", x.Requested)
	}
	if !x.StatsUsed || !x.StatsFresh {
		t.Errorf("StatsUsed=%v StatsFresh=%v, want both true (lazy ANALYZE)", x.StatsUsed, x.StatsFresh)
	}
	if len(x.Candidates) < 3 {
		t.Fatalf("candidates = %d, want >= 3 (streaming/mat/direct)", len(x.Candidates))
	}
	for i := 1; i < len(x.Candidates); i++ {
		if x.Candidates[i].Cost < x.Candidates[i-1].Cost {
			t.Errorf("candidates not cost-sorted: %v", x.Candidates)
		}
	}
	if x.Candidates[0].Strategy != x.Strategy {
		t.Errorf("chose %q but cheapest candidate is %q", x.Strategy, x.Candidates[0].Strategy)
	}
	if len(x.Operators) == 0 {
		t.Fatal("no operator estimates")
	}
	for _, op := range x.Operators {
		if op.ActualRows != -1 {
			t.Errorf("operator %q has actuals before execution", op.Op)
		}
	}
	if !strings.Contains(x.Text(), "strategy: ") {
		t.Errorf("Text() missing strategy line:\n%s", x.Text())
	}
}

// TestExplainExecuteJoinsActuals is the acceptance check on the E1
// workload (query1 is the paper's Query 1): after ExplainExecute,
// every estimated operator carries an actual row count from the trace.
func TestExplainExecuteJoinsActuals(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []exec.Strategy{
		exec.StrategyAuto, exec.StrategyGroupBy, exec.StrategyGroupByMat, exec.StrategyDirect,
	} {
		x, res, err := pq.ExplainExecute(context.Background(), ExecOptions{Strategy: strat})
		if err != nil {
			t.Fatalf("ExplainExecute(%v): %v", strat, err)
		}
		if !x.Executed {
			t.Fatalf("%v: Executed = false", strat)
		}
		if x.Strategy != res.Strategy.String() {
			t.Errorf("%v: report strategy %q != result strategy %q", strat, x.Strategy, res.Strategy)
		}
		if len(x.Operators) == 0 {
			t.Fatalf("%v: no operator estimates", strat)
		}
		for _, op := range x.Operators {
			if op.ActualRows < 0 {
				t.Errorf("%v: operator %q has no actual row count", strat, op.Op)
			}
		}
		if x.ActualGroups != int64(res.Stats.Groups) {
			t.Errorf("%v: ActualGroups = %d, want %d", strat, x.ActualGroups, res.Stats.Groups)
		}
		if x.EstGroups <= 0 {
			t.Errorf("%v: EstGroups = %v, want > 0", strat, x.EstGroups)
		}
		// Exact statistics on a tiny database: the group estimate should
		// land on the true count.
		if x.StatsFresh && x.EstGroups != float64(x.ActualGroups) {
			t.Errorf("%v: EstGroups = %v with fresh stats, actual %d", strat, x.EstGroups, x.ActualGroups)
		}
		// Renders both ways.
		txt := x.Text()
		if !strings.Contains(txt, "actual") {
			t.Errorf("%v: Text() missing actuals:\n%s", strat, txt)
		}
		raw, err := x.JSON()
		if err != nil {
			t.Fatalf("%v: JSON(): %v", strat, err)
		}
		var back map[string]any
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%v: JSON round-trip: %v", strat, err)
		}
		if back["executed"] != true {
			t.Errorf("%v: JSON executed = %v", strat, back["executed"])
		}
	}
}

// TestExplainNonGroupingQuery: queries outside the grouping family
// explain as the generic physical fallback, and ExplainExecute still
// runs them.
func TestExplainNonGroupingQuery(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(nonGrouping)
	if err != nil {
		t.Fatal(err)
	}
	x, res, err := pq.ExplainExecute(context.Background(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if x.Strategy != "physical" {
		t.Errorf("strategy = %q, want physical", x.Strategy)
	}
	if x.Note == "" {
		t.Error("fallback explain should carry a note")
	}
	if x.ActualGroups != int64(len(res.Trees)) {
		t.Errorf("ActualGroups = %d, want %d trees", x.ActualGroups, len(res.Trees))
	}
}

// TestStatsCacheRevalidatesAfterIngest: the engine's statistics cache
// is epoch-keyed — an insert after the first auto execution must be
// visible to the next planning decision (incremental maintenance keeps
// the catalog fresh without a rescan).
func TestStatsCacheRevalidatesAfterIngest(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := pq.Execute(ctx, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	before := pq.Explain(ExecOptions{})

	doc, err := xmltree.ParseString("<article><title>Planner</title><author>Ada</author><author>Bob</author></article>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DB().InsertDocument("extra.xml", doc, storage.SyncAlways); err != nil {
		t.Fatal(err)
	}
	after := pq.Explain(ExecOptions{})
	if !after.StatsFresh {
		t.Error("stats stale after incremental ingest (maintenance should keep them fresh)")
	}
	if after.EstGroups <= before.EstGroups {
		t.Errorf("EstGroups %v -> %v after adding two new authors, want an increase",
			before.EstGroups, after.EstGroups)
	}
	res, err := pq.Execute(ctx, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Stats.Groups) != int64(after.EstGroups) {
		t.Errorf("post-ingest groups = %d, fresh-stats estimate %v", res.Stats.Groups, after.EstGroups)
	}
}

// TestPlannerPickNeverFarFromBest is the planner-correctness gate: on
// a bench-style fixture the planner's pick must not be slower than
// 1.5x the best Spec-level strategy (min-of-3 wall times to damp
// scheduler noise).
func TestPlannerPickNeverFarFromBest(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: 300, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	e := New(db, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm the statistics and the buffer pool outside the clock.
	auto, err := pq.Execute(ctx, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	minWall := func(strat exec.Strategy) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := pq.Execute(ctx, ExecOptions{Strategy: strat}); err != nil {
				t.Fatalf("Execute(%v): %v", strat, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// The candidates the cost model distinguishes.
	walls := map[exec.Strategy]time.Duration{}
	bestWall := time.Duration(1<<63 - 1)
	for _, strat := range []exec.Strategy{
		exec.StrategyGroupBy, exec.StrategyGroupByMat, exec.StrategyDirect,
	} {
		walls[strat] = minWall(strat)
		if walls[strat] < bestWall {
			bestWall = walls[strat]
		}
	}
	picked := minWall(auto.Strategy)
	if float64(picked) > 1.5*float64(bestWall) {
		t.Errorf("planner picked %v at %v; best strategy runs in %v (> 1.5x; walls %v)",
			auto.Strategy, picked, bestWall, walls)
	}
}
