package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"timber/internal/dblpgen"
	"timber/internal/exec"
	"timber/internal/paperdata"
	"timber/internal/storage"
)

const query1 = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

// nonGrouping is translatable but not a grouping idiom: no rewrite.
const nonGrouping = `FOR $a IN distinct-values(document("bib.xml")//author) RETURN <r>{$a}</r>`

func sampleEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	db, err := storage.CreateTemp(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	return New(db, opts)
}

func TestPrepareCachesPlans(t *testing.T) {
	e := sampleEngine(t, Options{})
	p1, cached, err := e.PrepareCached(query1)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first Prepare reported a cache hit")
	}
	if !p1.Applied {
		t.Error("query1 should trigger the GROUPBY rewrite")
	}
	p2, cached, err := e.PrepareCached(query1)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || p2 != p1 {
		t.Error("second Prepare should return the cached plan (parse+optimize skipped)")
	}
	st := e.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("cache stats = %+v, want 1 hit, 1 miss, size 1", st)
	}
}

func TestPrepareRejectsGarbage(t *testing.T) {
	e := sampleEngine(t, Options{})
	if _, err := e.Prepare("this is not xquery"); err == nil {
		t.Error("garbage query should fail to prepare")
	}
	if st := e.CacheStats(); st.Size != 0 {
		t.Errorf("failed prepare must not be cached; size = %d", st.Size)
	}
}

// TestCacheEvictionLRU: capacity 2, recency decides the victim.
func TestCacheEvictionLRU(t *testing.T) {
	e := sampleEngine(t, Options{CacheSize: 2})
	q := func(i int) string { return query1 + strings.Repeat("\n", i+1) }
	for i := 0; i < 2; i++ {
		if _, err := e.Prepare(q(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch q0 so q1 becomes least recently used, then overflow.
	if _, cached, _ := e.PrepareCached(q(0)); !cached {
		t.Fatal("q0 should be cached")
	}
	if _, err := e.Prepare(q(2)); err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("cache stats = %+v, want 1 eviction at size 2", st)
	}
	// Probe q0 before q1: probing the evicted q1 re-inserts it, which
	// would evict q0 in turn.
	if _, cached, _ := e.PrepareCached(q(0)); !cached {
		t.Error("q0 should have survived (recently used)")
	}
	if _, cached, _ := e.PrepareCached(q(1)); cached {
		t.Error("q1 should have been evicted (least recently used)")
	}
}

// TestCacheHitRatio: a zipf-ish re-prepare loop must show the expected
// exact hit/miss split.
func TestCacheHitRatio(t *testing.T) {
	e := sampleEngine(t, Options{CacheSize: 4})
	q := func(i int) string { return query1 + strings.Repeat("\n", i+1) }
	const distinct, rounds = 3, 10
	for r := 0; r < rounds; r++ {
		for i := 0; i < distinct; i++ {
			if _, err := e.Prepare(q(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := e.CacheStats()
	if st.Misses != distinct || st.Hits != int64(distinct*(rounds-1)) {
		t.Errorf("cache stats = %+v, want %d misses and %d hits", st, distinct, distinct*(rounds-1))
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d under capacity", st.Evictions)
	}
}

func TestCacheDisabled(t *testing.T) {
	e := sampleEngine(t, Options{CacheSize: -1})
	p1, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	p2, cached, err := e.PrepareCached(query1)
	if err != nil {
		t.Fatal(err)
	}
	if cached || p1 == p2 {
		t.Error("disabled cache should recompile every time")
	}
}

// groupRows flattens each result tree to "tag=content;..." and sorts,
// so strategies with different (but each deterministic) group orders
// compare as multisets.
func groupRows(res *Result) []string {
	var out []string
	for _, tr := range res.Trees {
		var b strings.Builder
		for _, c := range tr.Children {
			b.WriteString(c.Tag + "=" + c.Content + ";")
		}
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}

// TestExecuteStrategiesAgree: every strategy the facade accepts
// produces the logical reference answer as a group multiset (group
// order is strategy-defined: first-occurrence for direct plans, sorted
// by grouping value for groupby plans).
func TestExecuteStrategiesAgree(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	logical, err := pq.Execute(ctx, ExecOptions{Strategy: exec.StrategyLogical})
	if err != nil {
		t.Fatal(err)
	}
	if len(logical.Trees) == 0 {
		t.Fatal("logical evaluation produced no trees")
	}
	want := groupRows(logical)
	for _, strat := range []exec.Strategy{
		exec.StrategyPhysical, exec.StrategyGroupBy, exec.StrategyGroupByMat,
		exec.StrategyReplicating, exec.StrategyDirect, exec.StrategyDirectNested,
		exec.StrategyDirectBatch,
	} {
		res, err := pq.Execute(ctx, ExecOptions{Strategy: strat})
		if err != nil {
			t.Fatalf("Execute(%v): %v", strat, err)
		}
		if got := groupRows(res); !reflect.DeepEqual(got, want) {
			t.Errorf("Execute(%v) groups = %v, want %v", strat, got, want)
		}
		if res.Strategy != strat {
			t.Errorf("Execute(%v) ran %v", strat, res.Strategy)
		}
	}
}

// TestExecuteFallsBackWithoutRewrite: Spec-level strategies degrade to
// the generic physical plan when the grouping idiom is absent, so the
// facade's zero-value options work for every translatable query.
func TestExecuteFallsBackWithoutRewrite(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(nonGrouping)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Applied {
		t.Fatal("nonGrouping should not rewrite")
	}
	res, err := pq.Execute(context.Background(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != exec.StrategyPhysical {
		t.Errorf("fallback strategy = %v, want physical", res.Strategy)
	}
	logical, err := pq.Execute(context.Background(), ExecOptions{Strategy: exec.StrategyLogical})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serialize() != logical.Serialize() {
		t.Error("fallback result differs from logical reference")
	}
}

// TestEngineConcurrentHammer: 16 goroutines share one Engine and one
// cached plan, across strategies and parallelism settings, under the
// race detector when CI runs with -race. Every execution must be
// byte-identical to the solo baseline of its strategy.
func TestEngineConcurrentHammer(t *testing.T) {
	db, err := storage.CreateTemp(storage.Options{PoolPages: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: 200, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	e := New(db, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	strats := []exec.Strategy{
		exec.StrategyGroupBy, exec.StrategyDirect, exec.StrategyDirectNested,
		exec.StrategyDirectBatch, exec.StrategyReplicating, exec.StrategyPhysical,
	}
	baseline := map[exec.Strategy]string{}
	for _, s := range strats {
		res, err := pq.Execute(context.Background(), ExecOptions{Strategy: s})
		if err != nil {
			t.Fatalf("baseline %v: %v", s, err)
		}
		baseline[s] = res.Serialize()
	}

	const goroutines, iters = 16, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				strat := strats[(g+i)%len(strats)]
				p, err := e.Prepare(query1)
				if err != nil {
					errs <- err
					return
				}
				res, err := p.Execute(context.Background(), ExecOptions{Strategy: strat, Parallelism: 1 + g%4})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d (%v): %w", g, i, strat, err)
					return
				}
				if got := res.Serialize(); got != baseline[strat] {
					errs <- fmt.Errorf("goroutine %d iter %d (%v): result bytes differ from solo baseline", g, i, strat)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.CacheStats()
	if st.Misses != 1 {
		t.Errorf("cache misses = %d, want 1 (every goroutine reused the prepared plan)", st.Misses)
	}
	if st.Hits < goroutines*iters {
		t.Errorf("cache hits = %d, want >= %d", st.Hits, goroutines*iters)
	}
}

// TestExecuteCancelled: a cancelled context returns promptly with
// ctx.Err(), and the buffer pool stays coherent — a traced solo run
// afterwards still satisfies the counter-exactness invariant.
func TestExecuteCancelled(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []exec.Strategy{exec.StrategyGroupBy, exec.StrategyDirect, exec.StrategyPhysical} {
		for _, p := range []int{1, 4} {
			res, err := pq.Execute(ctx, ExecOptions{Strategy: strat, Parallelism: p})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("Execute(%v p=%d) err = %v, want context.Canceled", strat, p, err)
			}
			if res != nil {
				t.Errorf("Execute(%v p=%d) returned a result after cancellation", strat, p)
			}
		}
	}

	// Counter exactness after cancellation: reset, trace one run, and
	// verify the span deltas telescope to the global counters.
	db := e.DB()
	db.ResetStats()
	tr := db.NewTracer("post-cancel")
	if _, err := pq.Execute(context.Background(), ExecOptions{Strategy: exec.StrategyGroupBy, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Finish().Verify(db.TraceCounters()); err != nil {
		t.Errorf("exactness invariant violated after cancellation: %v", err)
	}
}

// TestExecuteDeadlineExceeded: an already-expired deadline surfaces as
// context.DeadlineExceeded — the error timber-serve maps to 504.
func TestExecuteDeadlineExceeded(t *testing.T) {
	e := sampleEngine(t, Options{})
	pq, err := e.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := pq.Execute(ctx, ExecOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}
