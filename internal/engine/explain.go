package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"timber/internal/exec"
	"timber/internal/obs"
	"timber/internal/opt/planner"
)

// Explain is the first-class EXPLAIN report: the strategy the planner
// chose (or the override that preempted it), the costed alternatives,
// and per-operator cardinality estimates — joined against the actuals
// from the execution trace when the query has run. It renders as text
// (Text) and marshals directly to JSON.
type Explain struct {
	// Query is the source text.
	Query string `json:"query"`
	// Applied reports whether the GROUPBY rewrite produced the
	// physical grouping plan the strategies below execute.
	Applied bool `json:"grouping_rewrite"`
	// Requested is the strategy the caller asked for ("auto" when the
	// planner decided).
	Requested string `json:"requested_strategy"`
	// Strategy is the plan that was (or would be) run.
	Strategy string `json:"strategy"`
	// StatsUsed and StatsFresh report whether cardinality statistics
	// informed the choice and whether they described exactly the
	// current data.
	StatsUsed  bool `json:"stats_used"`
	StatsFresh bool `json:"stats_fresh"`
	// Candidates are the costed alternatives, cheapest first (empty
	// when the strategy was forced or the planner had no statistics).
	Candidates []ExplainCandidate `json:"candidates,omitempty"`
	// Matcher is the pattern-matching algorithm the physical path runs
	// — the planner's pick under auto, the override otherwise. Empty
	// when the plan embeds no pattern into the database.
	Matcher string `json:"matcher,omitempty"`
	// MatcherCandidates are the costed matcher alternatives, cheapest
	// first (empty under an override).
	MatcherCandidates []ExplainMatcherCandidate `json:"matcher_candidates,omitempty"`
	// JoinOrder is the chosen matcher's expected edge-resolution order
	// over the pattern labels: the greedy simulation for the binary
	// cascade, pattern pre-order for the holistic matcher.
	JoinOrder []string `json:"join_order,omitempty"`
	// Operators estimates each physical operator's output rows, in
	// pipeline order; after execution ActualRows carries the traced
	// row counts.
	Operators []ExplainOp `json:"operators,omitempty"`
	// EstGroups is the planner's estimate of the result-group count.
	EstGroups float64 `json:"est_groups,omitempty"`
	// Executed reports whether the actuals below are populated.
	Executed bool `json:"executed"`
	// ActualGroups is the executed run's group count (-1 before
	// execution).
	ActualGroups int64 `json:"actual_groups"`
	// ElapsedNS is the executed run's wall time.
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Note carries fallback explanations (e.g. rewrite not applied).
	Note string `json:"note,omitempty"`
}

// ExplainCandidate is one costed strategy alternative.
type ExplainCandidate struct {
	Strategy string  `json:"strategy"`
	Cost     float64 `json:"cost"`
	Detail   string  `json:"detail,omitempty"`
}

// ExplainMatcherCandidate is one costed pattern-matcher alternative.
type ExplainMatcherCandidate struct {
	Matcher string  `json:"matcher"`
	Cost    float64 `json:"cost"`
	Detail  string  `json:"detail,omitempty"`
}

// ExplainOp is one physical operator's estimated (and, after
// execution, actual) output cardinality.
type ExplainOp struct {
	Op      string  `json:"op"`
	EstRows float64 `json:"est_rows"`
	// ActualRows is -1 until the query executes (or when the trace
	// carried no row count for the operator).
	ActualRows int64 `json:"actual_rows"`
}

// Explain reports the plan the engine would run for these options,
// with per-operator cardinality estimates, without executing anything.
func (pq *PreparedQuery) Explain(o ExecOptions) *Explain {
	strat, dec := pq.resolvePlan(o.Strategy)
	x := &Explain{
		Query:        pq.Text,
		Applied:      pq.Applied,
		Requested:    o.Strategy.String(),
		Strategy:     strat.String(),
		ActualGroups: -1,
	}
	if pq.Pattern != nil {
		mkind, mdec := pq.resolveMatcher(o.Matcher)
		x.Matcher = mkind.String()
		if mdec != nil {
			for _, c := range mdec.Candidates {
				x.MatcherCandidates = append(x.MatcherCandidates,
					ExplainMatcherCandidate{Matcher: c.Matcher.String(), Cost: c.Cost, Detail: c.Detail})
			}
			x.JoinOrder = mdec.JoinOrder
		}
	}
	if !pq.Applied {
		if o.Strategy != exec.StrategyLogical && o.Strategy != exec.StrategyPhysical {
			x.Note = "grouping idiom not detected; generic physical plan"
		}
		return x
	}
	switch strat {
	case exec.StrategyLogical, exec.StrategyPhysical:
		return x
	}
	if dec == nil {
		// Forced strategy: estimate its operators anyway so EXPLAIN
		// ANALYZE works under overrides too.
		dec = pq.describeForced(strat)
		x.Note = "strategy forced by caller; planner bypassed"
	}
	x.StatsUsed = dec.StatsUsed
	x.StatsFresh = dec.StatsFresh
	x.EstGroups = dec.Groups
	for _, c := range dec.Candidates {
		x.Candidates = append(x.Candidates, ExplainCandidate{Strategy: c.Strategy.String(), Cost: c.Cost, Detail: c.Detail})
	}
	for _, op := range dec.Operators {
		x.Operators = append(x.Operators, ExplainOp{Op: op.Op, EstRows: op.Rows, ActualRows: -1})
	}
	return x
}

// ExplainExecute runs the prepared plan and returns the EXPLAIN report
// with estimates joined against the actual per-operator row counts
// from the execution trace, alongside the result itself. The run is
// traced with a private wall-clock-only tracer; ExecOptions.Tracer is
// ignored (use Execute directly for counter-exact tracing).
func (pq *PreparedQuery) ExplainExecute(ctx context.Context, o ExecOptions) (*Explain, *Result, error) {
	x := pq.Explain(o)
	strat, dec := pq.resolvePlan(o.Strategy)
	o.Strategy = strat // pin the resolved plan: the run must match the report
	tr := obs.New("explain", nil)
	o.Tracer = tr
	start := time.Now()
	res, err := pq.Execute(ctx, o)
	data := tr.Finish()
	if err != nil {
		return nil, nil, err
	}
	pq.eng.observePlan(obs.QueryIDFrom(ctx), dec, strat, res)
	x.Executed = true
	x.ElapsedNS = time.Since(start).Nanoseconds()
	x.Strategy = res.Strategy.String()
	x.ActualGroups = int64(res.Stats.Groups)
	if res.Strategy == exec.StrategyLogical || res.Strategy == exec.StrategyPhysical {
		// Plan evaluation reports no ExecStats; each output tree is one
		// result group.
		x.ActualGroups = int64(len(res.Trees))
	}
	if data != nil {
		actuals := map[string]int64{}
		collectActuals(data, actuals)
		for i := range x.Operators {
			if v, ok := actuals[x.Operators[i].Op]; ok {
				x.Operators[i].ActualRows = v
			}
		}
	}
	return x, res, nil
}

// collectActuals flattens a span tree into operator-name → row-count,
// stripping the "op: " report prefix so names line up with the
// planner's estimates. Report spans (rows_out) overwrite phase spans
// of the same name — they carry the exact operator output.
func collectActuals(d *obs.SpanData, out map[string]int64) {
	name := strings.TrimPrefix(d.Name, "op: ")
	if v, ok := spanRows(d); ok {
		out[name] = v
	}
	for _, c := range d.Children {
		collectActuals(c, out)
	}
}

// spanRows extracts a span's output row count from its operator
// counters. Spans without a row-like counter of their own (e.g. the
// "sjoin: join path" parent) inherit the last child's — the final
// step's output is the phase's.
func spanRows(d *obs.SpanData) (int64, bool) {
	for _, k := range []string{"rows_out", "witnesses", "groups", "pairs", "postings", "product_trees", "distinct", "rows", "value_lookups"} {
		if v, ok := d.Ops[k]; ok {
			return v, true
		}
	}
	if n := len(d.Children); n > 0 {
		return spanRows(d.Children[n-1])
	}
	return 0, false
}

// describeForced builds a Decision-shaped estimate report for an
// explicitly requested strategy, so EXPLAIN under an override still
// shows per-operator expectations.
func (pq *PreparedQuery) describeForced(strat exec.Strategy) *planner.Decision {
	cat := pq.eng.cardStats()
	full := planner.Choose(cat, pq.Spec)
	full.Strategy = strat
	full.Candidates = nil
	full.Operators = planner.Describe(cat, pq.Spec, strat)
	return full
}

// Text renders the report as an indented tree, estimates beside
// actuals.
func (x *Explain) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s (requested %s)\n", x.Strategy, x.Requested)
	if x.Matcher != "" {
		fmt.Fprintf(&b, "matcher: %s", x.Matcher)
		if len(x.JoinOrder) > 0 {
			fmt.Fprintf(&b, " (join order %s)", strings.Join(x.JoinOrder, " -> "))
		}
		b.WriteByte('\n')
	}
	if len(x.MatcherCandidates) > 0 {
		b.WriteString("matcher candidates:\n")
		for _, c := range x.MatcherCandidates {
			fmt.Fprintf(&b, "  %-12s cost %12.0f", c.Matcher, c.Cost)
			if c.Detail != "" {
				fmt.Fprintf(&b, "  (%s)", c.Detail)
			}
			b.WriteByte('\n')
		}
	}
	if !x.Applied {
		b.WriteString("grouping rewrite: not applied\n")
	}
	if x.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", x.Note)
	}
	if x.StatsUsed {
		fresh := "fresh"
		if !x.StatsFresh {
			fresh = "stale"
		}
		fmt.Fprintf(&b, "statistics: %s\n", fresh)
	} else if x.Applied {
		b.WriteString("statistics: unavailable\n")
	}
	if len(x.Candidates) > 0 {
		b.WriteString("candidates:\n")
		for _, c := range x.Candidates {
			fmt.Fprintf(&b, "  %-12s cost %12.0f", c.Strategy, c.Cost)
			if c.Detail != "" {
				fmt.Fprintf(&b, "  (%s)", c.Detail)
			}
			b.WriteByte('\n')
		}
	}
	if len(x.Operators) > 0 {
		b.WriteString("operators:\n")
		for _, op := range x.Operators {
			fmt.Fprintf(&b, "  %-32s est %10.0f", op.Op, op.EstRows)
			if x.Executed {
				if op.ActualRows >= 0 {
					fmt.Fprintf(&b, "  actual %10d", op.ActualRows)
				} else {
					fmt.Fprintf(&b, "  actual          ?")
				}
			}
			b.WriteByte('\n')
		}
	}
	if x.Executed {
		fmt.Fprintf(&b, "groups: est %.0f actual %d\n", x.EstGroups, x.ActualGroups)
		fmt.Fprintf(&b, "elapsed: %v\n", time.Duration(x.ElapsedNS).Round(time.Microsecond))
	} else if x.EstGroups > 0 {
		fmt.Fprintf(&b, "groups: est %.0f\n", x.EstGroups)
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (x *Explain) JSON() ([]byte, error) {
	return json.MarshalIndent(x, "", "  ")
}
