package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoNoNewChunkAfterError pins the cancellation contract: once an
// error is recorded (and the cursor poisoned), no worker may claim
// another chunk — even a worker that already passed the loop-top
// failed check and is about to hit the cursor. The hooks build that
// exact interleaving deterministically:
//
//  1. Two workers start; one claims chunk 0, one claims chunk 1.
//  2. The chunk-0 owner blocks inside fn(0..) until released.
//  3. The chunk-1 owner finishes its chunk, passes the loop-top
//     failed check, and parks in the claim window (hook call #3 —
//     the chunk-0 owner is still inside fn, so call #3 is
//     necessarily the chunk-1 owner's second iteration).
//  4. Parking releases the chunk-0 owner, whose error poisons the
//     cursor and unparks the waiter.
//  5. The waiter's claim must now be rejected; a pre-fix cursor
//     would hand it chunk 2.
func TestDoNoNewChunkAfterError(t *testing.T) {
	const n, workers = 1000, 2
	chunk := n / (workers * 8)
	errBoom := errors.New("boom")
	errReady := make(chan struct{})
	recorded := make(chan struct{})
	var hookCalls atomic.Int64
	var cancelled atomic.Bool
	var mu sync.Mutex
	var lateClaims []int

	testHookBeforeClaim = func() {
		if hookCalls.Add(1) == 3 {
			close(errReady)
			<-recorded
		}
	}
	testHookClaim = func(lo int) {
		if cancelled.Load() {
			mu.Lock()
			lateClaims = append(lateClaims, lo)
			mu.Unlock()
		}
	}
	testHookCancel = func() {
		cancelled.Store(true)
		close(recorded)
	}
	defer func() {
		testHookBeforeClaim, testHookClaim, testHookCancel = nil, nil, nil
	}()

	err := Do(nil, n, workers, func(i int) error {
		if i < chunk {
			<-errReady
			return errBoom
		}
		return nil
	})
	if err != errBoom {
		t.Fatalf("Do returned %v, want %v", err, errBoom)
	}
	if len(lateClaims) > 0 {
		t.Fatalf("chunks claimed after cancellation was recorded: %v", lateClaims)
	}
}

// TestDoPoisonedCursorStillReturnsFirstError makes sure poisoning the
// cursor does not disturb error selection or completion when several
// items fail back to back.
func TestDoPoisonedCursorStillReturnsFirstError(t *testing.T) {
	errBoom := errors.New("boom")
	var calls atomic.Int64
	err := Do(nil, 500, 4, func(i int) error {
		calls.Add(1)
		return errBoom
	})
	if err != errBoom {
		t.Fatalf("Do returned %v, want %v", err, errBoom)
	}
	if c := calls.Load(); c == 0 || c > 500 {
		t.Fatalf("fn ran %d times, want between 1 and 500", c)
	}
}

// TestDoContextCancelSequential pins the workers<=1 inline path: the
// context is checked before every item, so cancelling inside fn(2)
// means items 3.. never run and Do reports ctx.Err().
func TestDoContextCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visited []int
	err := Do(ctx, 100, 1, func(i int) error {
		visited = append(visited, i)
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	if len(visited) != 3 || visited[2] != 2 {
		t.Fatalf("visited %v, want exactly [0 1 2]", visited)
	}
}

// TestDoContextCancelMidChunk is the bugfix's core property: a worker
// must observe cancellation *between items of an already-claimed
// chunk*, not only when claiming the next one. Item 0 cancels the
// context; items 1..chunk-1 live in the same chunk and run on the same
// goroutine strictly after fn(0), so with the per-item check none of
// them may execute. (Other chunks may have been claimed concurrently
// before the cancel — only chunk 0's tail is deterministic.)
func TestDoContextCancelMidChunk(t *testing.T) {
	const n, workers = 1000, 2
	chunk := n / (workers * 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var chunkZeroTail atomic.Int64
	err := Do(ctx, n, workers, func(i int) error {
		if i == 0 {
			cancel()
		} else if i < chunk {
			chunkZeroTail.Add(1)
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	if c := chunkZeroTail.Load(); c != 0 {
		t.Fatalf("%d items of chunk 0 ran after their own chunk cancelled the context", c)
	}
}

// TestDoNoNewChunkAfterContextCancel mirrors TestDoNoNewChunkAfterError
// for external cancellation: a worker parked in the claim window when
// the context is cancelled must re-check it and refuse to claim. The
// interleaving is the same hook dance as the error-path test, with the
// blocked fn cancelling the context instead of returning an error.
func TestDoNoNewChunkAfterContextCancel(t *testing.T) {
	const n, workers = 1000, 2
	chunk := n / (workers * 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelReady := make(chan struct{})
	recorded := make(chan struct{})
	var hookCalls atomic.Int64
	var cancelled atomic.Bool
	var mu sync.Mutex
	var lateClaims []int

	testHookBeforeClaim = func() {
		if hookCalls.Add(1) == 3 {
			close(cancelReady)
			<-recorded
		}
	}
	testHookClaim = func(lo int) {
		if cancelled.Load() {
			mu.Lock()
			lateClaims = append(lateClaims, lo)
			mu.Unlock()
		}
	}
	testHookCancel = func() {
		cancelled.Store(true)
		close(recorded)
	}
	defer func() {
		testHookBeforeClaim, testHookClaim, testHookCancel = nil, nil, nil
	}()

	err := Do(ctx, n, workers, func(i int) error {
		if i < chunk {
			<-cancelReady
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	if len(lateClaims) > 0 {
		t.Fatalf("chunks claimed after context cancellation was recorded: %v", lateClaims)
	}
}
