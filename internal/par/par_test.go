package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

// TestDoCoversEveryIndexOnce is the core contract: regardless of n and
// worker count, every index in [0, n) is visited exactly once.
func TestDoCoversEveryIndexOnce(t *testing.T) {
	prop := func(rawN uint8, rawW uint8) bool {
		n := int(rawN % 200)
		workers := int(rawW%12) + 1
		visits := make([]atomic.Int32, n)
		if err := Do(nil, n, workers, func(i int) error {
			visits[i].Add(1)
			return nil
		}); err != nil {
			return false
		}
		for i := range visits {
			if visits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDoSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var visited []int
	err := Do(nil, 10, 1, func(i int) error {
		visited = append(visited, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(visited) != 4 {
		t.Errorf("visited %v, want exactly [0 1 2 3]", visited)
	}
}

func TestDoParallelReturnsError(t *testing.T) {
	boom := errors.New("boom")
	err := Do(nil, 1000, 8, func(i int) error {
		if i == 500 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoZeroItems(t *testing.T) {
	called := false
	if err := Do(nil, 0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for empty range")
	}
}
