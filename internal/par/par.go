// Package par provides the bounded worker pool used by the parallel
// physical-execution layer. The design keeps determinism trivial:
// callers index a pre-sized result slice by work-item position, so any
// scheduling order produces the same output, and a parallelism of 1
// degenerates to a plain loop with zero goroutine overhead (the p=1
// path must not regress against the sequential seed).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to a concrete worker count:
// values <= 0 mean "use every core" (GOMAXPROCS).
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Do calls fn(i) for every i in [0, n), using at most workers
// goroutines. With workers <= 1 (or n <= 1) it runs inline on the
// calling goroutine. Work is handed out in contiguous chunks from an
// atomic cursor, so cheap items amortize the synchronization. The first
// error cancels remaining work (items already started still finish) and
// is returned; which error wins under concurrency is scheduling-
// dependent, so callers must treat any returned error as fatal for the
// whole batch.
func Do(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if failed.Load() {
						return
					}
					if err := fn(i); err != nil {
						errOnce.Do(func() { firstErr = err })
						failed.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
