// Package par provides the bounded worker pool used by the parallel
// physical-execution layer. The design keeps determinism trivial:
// callers index a pre-sized result slice by work-item position, so any
// scheduling order produces the same output, and a parallelism of 1
// degenerates to a plain loop with zero goroutine overhead (the p=1
// path must not regress against the sequential seed).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to a concrete worker count:
// values <= 0 mean "use every core" (GOMAXPROCS).
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// Test hooks for deterministic cancellation testing. testHookCancel
// runs right after an error is recorded and the cursor is poisoned;
// testHookBeforeClaim runs between a worker's loop-top failed check
// and its cursor claim (the race window the poisoned cursor closes);
// testHookClaim observes every accepted chunk claim.
var (
	testHookCancel      func()
	testHookBeforeClaim func()
	testHookClaim       func(lo int)
)

// Do calls fn(i) for every i in [0, n), using at most workers
// goroutines. With workers <= 1 (or n <= 1) it runs inline on the
// calling goroutine. Work is handed out in contiguous chunks from an
// atomic cursor, so cheap items amortize the synchronization. The first
// error cancels remaining work — the cursor is poisoned past n, so no
// worker claims another chunk after the error is recorded (items
// already started still finish). Which error wins under concurrency is
// scheduling-dependent, so callers must treat any returned error as
// fatal for the whole batch.
//
// A non-nil ctx cancels the pool externally: workers observe it both
// in the claim loop (no new chunk is handed out after cancellation)
// and between items inside a claimed chunk, so a timed-out query stops
// issuing buffer-pool fetches mid-chunk rather than draining the chunk
// first. When cancellation wins the race against item errors, Do
// returns ctx.Err(). A nil ctx means "never cancelled" and costs
// nothing on the hot path.
func Do(ctx context.Context, n, workers int, fn func(i int) error) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return ctx.Err()
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			failed.Store(true)
			// Poison the cursor: every Add past this point claims a
			// range at or beyond n and is rejected by the lo >= n
			// check, so cancellation stops chunk hand-out immediately
			// rather than only after the per-item failed check. The
			// cursor growing beyond n is harmless — it is never read
			// except through claimed ranges.
			cursor.Store(int64(n))
			if testHookCancel != nil {
				testHookCancel()
			}
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if testHookBeforeClaim != nil {
					testHookBeforeClaim()
				}
				if cancelled() {
					fail(ctx.Err())
					return
				}
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if testHookClaim != nil {
					testHookClaim(lo)
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if failed.Load() {
						return
					}
					if cancelled() {
						fail(ctx.Err())
						return
					}
					if err := fn(i); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
