package stats

import (
	"math"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	c := New()
	c.Epoch, c.Version, c.TotalNodes, c.Documents = 7, 0xdeadbeef00000003, 12345, 3
	got, err := DecodeHeader(EncodeHeader(c))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&Catalog{Epoch: 7, Version: 0xdeadbeef00000003, TotalNodes: 12345, Documents: 3, Tags: map[string]TagStat{}}) {
		t.Errorf("header round trip: got %+v", got)
	}
}

func TestTagRoundTrip(t *testing.T) {
	in := TagStat{Postings: 1 << 40, Docs: 9, ValuePostings: 17, DistinctValues: 5}
	got, err := DecodeTag(EncodeTag(in))
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Errorf("tag round trip: got %+v, want %+v", got, in)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := DecodeHeader(nil); err == nil {
		t.Error("empty header should fail")
	}
	if _, err := DecodeHeader([]byte{99, 1, 2, 3, 4}); err == nil {
		t.Error("bad version byte should fail")
	}
	good := EncodeHeader(New())
	if _, err := DecodeHeader(append(good, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	for cut := 0; cut < 4; cut++ {
		if _, err := DecodeTag(EncodeTag(TagStat{1, 2, 3, 4})[:cut]); err == nil {
			t.Errorf("truncated tag record (%d bytes) should fail", cut)
		}
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEstimators(t *testing.T) {
	c := New()
	c.TotalNodes = 1000
	c.Documents = 10
	c.Tags["article"] = TagStat{Postings: 100, Docs: 10}
	c.Tags["author"] = TagStat{Postings: 200, Docs: 10, ValuePostings: 200, DistinctValues: 50}
	c.Tags["rare"] = TagStat{Postings: 4, Docs: 2}

	if got := c.Postings("author"); !almost(got, 200) {
		t.Errorf("Postings(author) = %v", got)
	}
	if got := c.Postings("absent"); !almost(got, 0) {
		t.Errorf("Postings(absent) = %v, want 0", got)
	}
	if got := c.Selectivity("article"); !almost(got, 0.1) {
		t.Errorf("Selectivity(article) = %v, want 0.1", got)
	}
	if got := c.AvgFanout("author"); !almost(got, 20) {
		t.Errorf("AvgFanout(author) = %v, want 20", got)
	}
	if got := c.DistinctValues("author"); !almost(got, 50) {
		t.Errorf("DistinctValues(author) = %v, want 50", got)
	}
	// Unknown distinct count falls back to postings/2.
	if got := c.DistinctValues("article"); !almost(got, 50) {
		t.Errorf("DistinctValues(article) = %v, want 50 (fallback)", got)
	}
	if got := c.AvgValueMatches("author"); !almost(got, 4) {
		t.Errorf("AvgValueMatches(author) = %v, want 4", got)
	}
	if got := c.AvgValueMatches("article"); !almost(got, 1) {
		t.Errorf("AvgValueMatches(article) = %v, want 1 (unknown)", got)
	}
	// rare appears in 2 of author's 10 docs.
	if got := c.DocOverlap("rare", "author"); !almost(got, 0.2) {
		t.Errorf("DocOverlap(rare, author) = %v, want 0.2", got)
	}
	if got := c.DocOverlap("author", "rare"); !almost(got, 1) {
		t.Errorf("DocOverlap(author, rare) = %v, want 1", got)
	}

	// Edge estimate: author postings thinned by rare's doc overlap,
	// capped by parentRows * fanout.
	if got := c.EdgeCardinality("rare", 4, "author"); !almost(got, 40) {
		t.Errorf("EdgeCardinality(rare, 4, author) = %v, want 40 (200 * 0.2)", got)
	}
	if got := c.EdgeCardinality("rare", 1, "author"); !almost(got, 20) {
		t.Errorf("EdgeCardinality(rare, 1, author) = %v, want 20 (fanout cap)", got)
	}
}

func TestEqualIgnoresFresh(t *testing.T) {
	a := New()
	a.Tags["x"] = TagStat{Postings: 1}
	b := New()
	b.Tags["x"] = TagStat{Postings: 1}
	b.Fresh = true
	if !a.Equal(b) {
		t.Error("Equal must ignore Fresh")
	}
	b.Tags["x"] = TagStat{Postings: 2}
	if a.Equal(b) {
		t.Error("Equal must see tag differences")
	}
}
