// Package stats holds the cardinality statistics the cost-based
// planner consumes: per-tag posting counts from the tag index, and
// per-(tag, value) cardinalities from the value index, aggregated into
// one Catalog per database state. The storage layer collects and
// persists catalogs (see storage.BuildCardStats / Reader.CardStats);
// the planner (internal/opt) turns them into selectivity and cost
// estimates. The package is a leaf — it knows nothing about pages,
// B+trees or plans — so both layers can import it.
package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// TagStat aggregates the index cardinalities of one element tag.
type TagStat struct {
	// Postings is the number of tag-index postings — nodes with this
	// tag across all documents.
	Postings uint64 `json:"postings"`
	// Docs is the number of distinct documents containing the tag.
	Docs uint64 `json:"docs"`
	// ValuePostings is the number of value-index postings under this
	// tag (nodes with indexable content).
	ValuePostings uint64 `json:"value_postings,omitempty"`
	// DistinctValues is the number of distinct (tag, content) pairs in
	// the value index.
	DistinctValues uint64 `json:"distinct_values,omitempty"`
}

// Catalog is one database state's cardinality statistics.
type Catalog struct {
	// Epoch is the storage epoch the statistics were built or last
	// refreshed at. Diagnostic: epochs restart at 1 on reopen, so
	// freshness is decided by Version, not Epoch.
	Epoch uint64 `json:"epoch"`
	// Version is the opaque data-version token of the state the
	// statistics describe. The storage layer derives it from durable
	// catalog state (never-reused document IDs plus document count), so
	// it survives reopen and changes on every document insert or
	// delete. Statistics whose Version disagrees with the live state's
	// are stale — typically after an offline bulk load, which bypasses
	// incremental maintenance.
	Version uint64 `json:"version"`
	// TotalNodes is the total node count across all documents (every
	// node carries exactly one tag posting).
	TotalNodes uint64 `json:"total_nodes"`
	// Documents is the number of documents in the catalog.
	Documents uint64 `json:"documents"`
	// Tags maps each element tag to its cardinalities.
	Tags map[string]TagStat `json:"tags"`
	// Fresh reports whether Version matched the live state when the
	// catalog was read. Set by the storage layer; not persisted.
	Fresh bool `json:"fresh"`
}

// New returns an empty catalog ready for aggregation.
func New() *Catalog {
	return &Catalog{Tags: map[string]TagStat{}}
}

// Tag returns the statistics for one tag (zero if unseen).
func (c *Catalog) Tag(tag string) TagStat {
	if c == nil {
		return TagStat{}
	}
	return c.Tags[tag]
}

// TagNames returns the known tags in lexicographic order.
func (c *Catalog) TagNames() []string {
	names := make([]string, 0, len(c.Tags))
	for t := range c.Tags {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

// Postings estimates the number of nodes with the given tag. Unknown
// tags estimate to zero — an unknown tag genuinely has no postings
// when the statistics are fresh.
func (c *Catalog) Postings(tag string) float64 {
	return float64(c.Tag(tag).Postings)
}

// Selectivity estimates the fraction of all nodes carrying the tag.
func (c *Catalog) Selectivity(tag string) float64 {
	if c == nil || c.TotalNodes == 0 {
		return 0
	}
	return float64(c.Tag(tag).Postings) / float64(c.TotalNodes)
}

// AvgFanout estimates the number of tag occurrences per document that
// contains the tag at all.
func (c *Catalog) AvgFanout(tag string) float64 {
	t := c.Tag(tag)
	if t.Docs == 0 {
		return 0
	}
	return float64(t.Postings) / float64(t.Docs)
}

// DistinctValues estimates the number of distinct contents under the
// tag. When the value index never saw the tag (no value index, or
// contents beyond the indexable length), it falls back to half the
// posting count — the classic "unknown distinct count" guess.
func (c *Catalog) DistinctValues(tag string) float64 {
	t := c.Tag(tag)
	if t.DistinctValues > 0 {
		return float64(t.DistinctValues)
	}
	return float64(t.Postings) / 2
}

// AvgValueMatches estimates how many postings one (tag, content) probe
// of the value index returns.
func (c *Catalog) AvgValueMatches(tag string) float64 {
	t := c.Tag(tag)
	if t.DistinctValues == 0 {
		return 1
	}
	return float64(t.ValuePostings) / float64(t.DistinctValues)
}

// DocOverlap estimates the fraction of b-containing documents that
// also contain a — the factor by which a structural join against an
// a-tagged ancestor thins b's postings.
func (c *Catalog) DocOverlap(a, b string) float64 {
	bd := c.Tag(b).Docs
	if bd == 0 {
		return 0
	}
	ad := c.Tag(a).Docs
	if ad >= bd {
		return 1
	}
	return float64(ad) / float64(bd)
}

// EdgeCardinality estimates the witness rows produced by extending a
// structural-join edge from parentTag (parentRows rows currently
// bound) to childTag: the child's postings, thinned by document
// overlap, and never more than parentRows times the child's average
// per-document fanout.
func (c *Catalog) EdgeCardinality(parentTag string, parentRows float64, childTag string) float64 {
	est := c.Postings(childTag) * c.DocOverlap(parentTag, childTag)
	if parentRows > 0 {
		if fan := c.AvgFanout(childTag); fan > 0 {
			if lim := parentRows * fan; lim < est {
				est = lim
			}
		}
	}
	return est
}

// Record encoding. One header record plus one record per tag, so
// incremental maintenance rewrites only the records a transaction
// touches. All fields are uvarints behind a version byte.

// encVersion is the statistics record format version.
const encVersion = 1

var errCorrupt = errors.New("stats: corrupt statistics record")

// EncodeHeader serializes the catalog-level fields.
func EncodeHeader(c *Catalog) []byte {
	b := make([]byte, 0, 1+4*binary.MaxVarintLen64)
	b = append(b, encVersion)
	b = binary.AppendUvarint(b, c.Epoch)
	b = binary.AppendUvarint(b, c.Version)
	b = binary.AppendUvarint(b, c.TotalNodes)
	b = binary.AppendUvarint(b, c.Documents)
	return b
}

// DecodeHeader parses an EncodeHeader record into a fresh catalog
// (Tags left empty).
func DecodeHeader(b []byte) (*Catalog, error) {
	if len(b) < 1 || b[0] != encVersion {
		return nil, fmt.Errorf("%w: bad header version", errCorrupt)
	}
	vals, err := uvarints(b[1:], 4)
	if err != nil {
		return nil, fmt.Errorf("%w: header", errCorrupt)
	}
	c := New()
	c.Epoch, c.Version, c.TotalNodes, c.Documents = vals[0], vals[1], vals[2], vals[3]
	return c, nil
}

// EncodeTag serializes one tag's statistics.
func EncodeTag(t TagStat) []byte {
	b := make([]byte, 0, 4*binary.MaxVarintLen64)
	b = binary.AppendUvarint(b, t.Postings)
	b = binary.AppendUvarint(b, t.Docs)
	b = binary.AppendUvarint(b, t.ValuePostings)
	b = binary.AppendUvarint(b, t.DistinctValues)
	return b
}

// DecodeTag parses an EncodeTag record.
func DecodeTag(b []byte) (TagStat, error) {
	vals, err := uvarints(b, 4)
	if err != nil {
		return TagStat{}, fmt.Errorf("%w: tag record", errCorrupt)
	}
	return TagStat{Postings: vals[0], Docs: vals[1], ValuePostings: vals[2], DistinctValues: vals[3]}, nil
}

// uvarints decodes exactly n uvarints consuming the whole buffer.
func uvarints(b []byte, n int) ([]uint64, error) {
	out := make([]uint64, n)
	off := 0
	for i := 0; i < n; i++ {
		v, w := binary.Uvarint(b[off:])
		if w <= 0 {
			return nil, errCorrupt
		}
		out[i] = v
		off += w
	}
	if off != len(b) {
		return nil, errCorrupt
	}
	return out, nil
}

// Equal reports whether two catalogs carry identical statistics
// (ignoring the read-time Fresh flag).
func (c *Catalog) Equal(o *Catalog) bool {
	if c == nil || o == nil {
		return c == o
	}
	if c.Epoch != o.Epoch || c.Version != o.Version ||
		c.TotalNodes != o.TotalNodes || c.Documents != o.Documents ||
		len(c.Tags) != len(o.Tags) {
		return false
	}
	for tag, t := range c.Tags {
		if o.Tags[tag] != t {
			return false
		}
	}
	return true
}
