package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"timber/internal/pagestore"
)

func tempLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	l := Open(pagestore.OSFile(f), 0, 0)
	t.Cleanup(func() { l.Close() })
	return l, path
}

func replayAll(t *testing.T, path string) (recs []Record, committedLen int64, lastSeq uint64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	committedLen, lastSeq, err = Replay(pagestore.OSFile(f), func(r Record) error {
		recs = append(recs, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, committedLen, lastSeq
}

func TestRoundTrip(t *testing.T) {
	l, path := tempLog(t)
	img := bytes.Repeat([]byte{0xAB}, 300)
	if err := l.AppendPage(7, img); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLink(3, 9); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendMeta([]byte("meta-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(42); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(42); err != nil {
		t.Fatal(err)
	}
	if l.Synced() != 42 {
		t.Fatalf("Synced = %d", l.Synced())
	}

	recs, committedLen, lastSeq := replayAll(t, path)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	if committedLen != l.Size() {
		t.Fatalf("committedLen %d != size %d", committedLen, l.Size())
	}
	if lastSeq != 42 {
		t.Fatalf("lastSeq = %d", lastSeq)
	}
	id, gotImg, err := recs[0].Page()
	if err != nil || id != 7 || !bytes.Equal(gotImg, img) {
		t.Fatalf("page record: id=%d err=%v imgOK=%v", id, err, bytes.Equal(gotImg, img))
	}
	from, to, err := recs[1].Link()
	if err != nil || from != 3 || to != 9 {
		t.Fatalf("link record: %d→%d, %v", from, to, err)
	}
	if recs[2].Type != RecMeta || string(recs[2].Payload) != "meta-bytes" {
		t.Fatalf("meta record: %q", recs[2].Payload)
	}
	seq, err := recs[3].Commit()
	if err != nil || seq != 42 {
		t.Fatalf("commit record: %d, %v", seq, err)
	}
}

// TestTornTailTruncation cuts the log at every possible byte length
// and checks that replay always recovers exactly the commits whose
// final frame survived intact — never a partial transaction, never an
// error.
func TestTornTailTruncation(t *testing.T) {
	l, path := tempLog(t)
	type txn struct{ end int64 }
	var txns []txn
	img := bytes.Repeat([]byte{0x5C}, 100)
	for i := 1; i <= 5; i++ {
		if err := l.AppendPage(pagestore.PageID(i), img); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendLink(pagestore.PageID(i), pagestore.PageID(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(uint64(i)); err != nil {
			t.Fatal(err)
		}
		txns = append(txns, txn{end: l.Size()})
	}
	if err := l.Sync(5); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		cutPath := filepath.Join(t.TempDir(), "cut.wal")
		if err := os.WriteFile(cutPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, committedLen, lastSeq := replayAll(t, cutPath)
		// Expected: the largest transaction whose end <= cut.
		wantSeq, wantLen := uint64(0), int64(0)
		for i, tx := range txns {
			if tx.end <= int64(cut) {
				wantSeq, wantLen = uint64(i+1), tx.end
			}
		}
		if lastSeq != wantSeq || committedLen != wantLen {
			t.Fatalf("cut %d: recovered seq=%d len=%d, want seq=%d len=%d",
				cut, lastSeq, committedLen, wantSeq, wantLen)
		}
	}
}

// TestCorruptMiddleFrame flips one byte in an early frame: replay must
// stop before it, discarding everything from that frame on.
func TestCorruptMiddleFrame(t *testing.T) {
	l, path := tempLog(t)
	for i := 1; i <= 3; i++ {
		if err := l.AppendPage(pagestore.PageID(i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	firstEnd := int64(0)
	{
		recs, _, _ := replayAll(t, path)
		if len(recs) != 6 {
			t.Fatalf("have %d records", len(recs))
		}
	}
	// Find the end of txn 1 by replaying and counting; simpler: frame
	// sizes are deterministic: page frame = 8+1+4+7, commit = 8+1+8.
	firstEnd = (8 + 1 + 4 + 7) + (8 + 1 + 8)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstEnd+12] ^= 0xFF // inside txn 2's page payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, committedLen, lastSeq := replayAll(t, path)
	if lastSeq != 1 || committedLen != firstEnd {
		t.Fatalf("after corruption: seq=%d len=%d, want seq=1 len=%d", lastSeq, committedLen, firstEnd)
	}
}

// TestUncommittedTailDiscarded: records appended after the last commit
// are structurally clean but must not extend the committed prefix.
func TestUncommittedTailDiscarded(t *testing.T) {
	l, path := tempLog(t)
	if err := l.AppendPage(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	endCommitted := l.Size()
	if err := l.AppendPage(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLink(2, 3); err != nil {
		t.Fatal(err)
	}
	_, committedLen, lastSeq := replayAll(t, path)
	if committedLen != endCommitted || lastSeq != 1 {
		t.Fatalf("committedLen=%d lastSeq=%d, want %d/1", committedLen, lastSeq, endCommitted)
	}
}

// TestGroupCommitSharedFsync: concurrent Syncs for a batch of appended
// commits must coalesce into fewer fsyncs than commits.
func TestGroupCommitSharedFsync(t *testing.T) {
	l, _ := tempLog(t)
	const n = 32
	for i := 1; i <= n; i++ {
		if err := l.AppendPage(pagestore.PageID(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			if err := l.Sync(seq); err != nil {
				t.Error(err)
			}
		}(uint64(i))
	}
	wg.Wait()
	st := l.Stats()
	if st.Fsyncs == 0 || st.Fsyncs >= n {
		t.Fatalf("fsyncs = %d for %d commits, want coalescing (0 < fsyncs < %d)", st.Fsyncs, n, n)
	}
	if l.Synced() != n {
		t.Fatalf("Synced = %d, want %d", l.Synced(), n)
	}
}

// TestReset empties the log and replay finds nothing.
func TestReset(t *testing.T) {
	l, path := tempLog(t)
	if err := l.AppendPage(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("Size after reset = %d", l.Size())
	}
	recs, committedLen, _ := replayAll(t, path)
	if len(recs) != 0 || committedLen != 0 {
		t.Fatalf("replay after reset: %d records, len %d", len(recs), committedLen)
	}
}
