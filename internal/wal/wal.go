// Package wal implements the write-ahead log behind the storage
// layer's durable ingest path: a physical redo log of page images,
// heap links and metadata, applied on recovery up to the last
// CRC-clean commit record.
//
// Frame layout (little endian):
//
//	[0:4)  length of type+payload (u32)
//	[4:8)  CRC-32C of type+payload (u32)
//	[8]    record type
//	[9:]   payload
//
// A crash can tear the last frame (or leave preallocated zeros past
// the tail); Replay stops at the first frame whose length is
// implausible or whose checksum fails, and the caller truncates the
// file there. Frames after a torn frame are unreachable by
// construction of the commit protocol: a transaction is acknowledged
// only after an fsync that covers every frame up to and including its
// commit record, so nothing durable is ever lost to the truncation.
//
// Group commit: appends are serialized by the storage layer's commit
// lock, but Sync is leader/follower — the first goroutine into the
// sync lock fsyncs on behalf of everyone appended so far, and
// followers that find their sequence already covered return without
// touching the disk.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"timber/internal/obs"
	"timber/internal/pagestore"
)

// Record types.
const (
	// RecPage carries a page's framed slot image: u32 page ID followed
	// by the image bytes (see pagestore.SlotImage).
	RecPage = byte(1)
	// RecLink carries a deferred heap chain link: u32 from-page, u32
	// to-page. The link mutates a committed page, so it is applied to
	// the store only after the transaction's frames are durable.
	RecLink = byte(2)
	// RecMeta carries the storage layer's encoded metadata payload —
	// the authoritative roots between checkpoints.
	RecMeta = byte(3)
	// RecCommit carries the transaction sequence number (u64) and
	// marks everything since the previous commit as atomic.
	RecCommit = byte(4)
)

const frameHeaderLen = 9 // u32 len + u32 crc + type byte

// maxFrame bounds a frame's type+payload length during replay; a
// "length" beyond it is torn garbage, not a record. Page images are
// the largest payloads (a slot plus its u32 page ID), so 1 MiB leaves
// two orders of magnitude of headroom over the default page size.
const maxFrame = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Stats counts log activity since open.
type Stats struct {
	// Appends is the number of records appended (all types).
	Appends uint64
	// AppendedBytes is the total framed bytes appended.
	AppendedBytes uint64
	// Commits is the number of commit records appended.
	Commits uint64
	// Fsyncs is the number of fsyncs issued — under group commit this
	// is typically well below Commits.
	Fsyncs uint64
	// SyncWaits is the number of Sync calls satisfied by another
	// goroutine's fsync (group-commit followers).
	SyncWaits uint64
}

type statCounters struct {
	appends       atomic.Uint64
	appendedBytes atomic.Uint64
	commits       atomic.Uint64
	fsyncs        atomic.Uint64
	syncWaits     atomic.Uint64
}

// Log is an append-only write-ahead log over a pagestore.File. Append
// methods must be externally serialized (the storage layer's commit
// lock does this); Sync is safe to call concurrently.
type Log struct {
	mu     sync.Mutex // append serialization (defense in depth)
	f      pagestore.File
	size   int64 // append offset
	closed atomic.Bool

	// appended is the highest commit sequence written to the file;
	// synced is the highest sequence covered by a completed fsync.
	appended atomic.Uint64
	synced   atomic.Uint64
	syncMu   sync.Mutex // serializes the group-commit leader fsync

	stats   statCounters
	journal *obs.Journal // event journal; nil = disabled
}

// SetJournal wires the event journal the leader fsync path emits
// wal_fsync events into. Call before concurrent use (the storage layer
// sets it at open, before the log is shared).
func (l *Log) SetJournal(j *obs.Journal) { l.journal = j }

// Open wraps an existing File whose clean length and last committed
// sequence were established by Replay (0, 0 for a fresh log).
func Open(f pagestore.File, cleanLen int64, lastSeq uint64) *Log {
	l := &Log{f: f, size: cleanLen}
	l.appended.Store(lastSeq)
	l.synced.Store(lastSeq)
	return l
}

// Size returns the current append offset (the log's logical length).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats returns a snapshot of the log's activity counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:       l.stats.appends.Load(),
		AppendedBytes: l.stats.appendedBytes.Load(),
		Commits:       l.stats.commits.Load(),
		Fsyncs:        l.stats.fsyncs.Load(),
		SyncWaits:     l.stats.syncWaits.Load(),
	}
}

// append frames and writes one record.
func (l *Log) append(typ byte, payload ...[]byte) error {
	if l.closed.Load() {
		return ErrClosed
	}
	n := 1
	for _, p := range payload {
		n += len(p)
	}
	if n > maxFrame {
		return fmt.Errorf("wal: record of %d bytes exceeds frame bound %d", n, maxFrame)
	}
	frame := make([]byte, 8, 8+n)
	frame = append(frame, typ)
	for _, p := range payload {
		frame = append(frame, p...)
	}
	crc := crc32.Checksum(frame[8:], castagnoli)
	frame[0] = byte(n)
	frame[1] = byte(n >> 8)
	frame[2] = byte(n >> 16)
	frame[3] = byte(n >> 24)
	frame[4] = byte(crc)
	frame[5] = byte(crc >> 8)
	frame[6] = byte(crc >> 16)
	frame[7] = byte(crc >> 24)
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.stats.appends.Add(1)
	l.stats.appendedBytes.Add(uint64(len(frame)))
	return nil
}

func be32(v uint32) []byte { return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)} }

// AppendPage logs a page's framed slot image.
func (l *Log) AppendPage(id pagestore.PageID, img []byte) error {
	return l.append(RecPage, be32(uint32(id)), img)
}

// AppendLink logs a deferred heap chain link from one page to another.
func (l *Log) AppendLink(from, to pagestore.PageID) error {
	return l.append(RecLink, be32(uint32(from)), be32(uint32(to)))
}

// AppendMeta logs the storage layer's encoded metadata.
func (l *Log) AppendMeta(meta []byte) error {
	return l.append(RecMeta, meta)
}

// Commit appends the commit record that seals every frame since the
// previous commit into one atomic transaction. The transaction is
// durable only after a Sync covering seq.
func (l *Log) Commit(seq uint64) error {
	payload := []byte{
		byte(seq), byte(seq >> 8), byte(seq >> 16), byte(seq >> 24),
		byte(seq >> 32), byte(seq >> 40), byte(seq >> 48), byte(seq >> 56),
	}
	if err := l.append(RecCommit, payload); err != nil {
		return err
	}
	l.stats.commits.Add(1)
	l.appended.Store(seq)
	return nil
}

// Sync makes every appended frame up to seq durable. Group commit:
// whichever goroutine takes the sync lock fsyncs the whole appended
// prefix, so concurrent committers share one disk flush; callers that
// arrive after a covering fsync return immediately.
func (l *Log) Sync(seq uint64) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if l.synced.Load() >= seq {
		l.stats.syncWaits.Add(1)
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= seq {
		l.stats.syncWaits.Add(1)
		return nil
	}
	// Capture the appended watermark before fsync: frames appended
	// after the capture may also be flushed, but only the captured
	// prefix is promised durable.
	target := l.appended.Load()
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.journal.Emit(obs.Event{Type: obs.EvWALFsync, WALSeq: target, Err: err.Error()})
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.stats.fsyncs.Add(1)
	l.synced.Store(target)
	// Only the leader emits: followers satisfied by this flush took the
	// fast path above, so one event per physical fsync.
	l.journal.Emit(obs.Event{Type: obs.EvWALFsync, WALSeq: target, DurNS: time.Since(start).Nanoseconds()})
	return nil
}

// Synced returns the highest commit sequence covered by an fsync.
func (l *Log) Synced() uint64 { return l.synced.Load() }

// Reset truncates the log to empty after a checkpoint has made its
// effects durable elsewhere, and fsyncs the truncation.
func (l *Log) Reset() error {
	if l.closed.Load() {
		return ErrClosed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.stats.fsyncs.Add(1)
	l.size = 0
	return nil
}

// Close closes the underlying file without syncing: callers that need
// durability must Sync first (Close on a clean shutdown runs after a
// checkpoint has already emptied the log).
func (l *Log) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Record is one replayed WAL record. Payload aliases the replay
// scratch buffer and must be copied to retain past the callback.
type Record struct {
	Type    byte
	Payload []byte
}

// Page decodes a RecPage payload.
func (r Record) Page() (pagestore.PageID, []byte, error) {
	if r.Type != RecPage || len(r.Payload) < 4 {
		return 0, nil, fmt.Errorf("wal: not a page record (type %d, %d bytes)", r.Type, len(r.Payload))
	}
	id := uint32(r.Payload[0]) | uint32(r.Payload[1])<<8 | uint32(r.Payload[2])<<16 | uint32(r.Payload[3])<<24
	return pagestore.PageID(id), r.Payload[4:], nil
}

// Link decodes a RecLink payload.
func (r Record) Link() (from, to pagestore.PageID, err error) {
	if r.Type != RecLink || len(r.Payload) != 8 {
		return 0, 0, fmt.Errorf("wal: not a link record (type %d, %d bytes)", r.Type, len(r.Payload))
	}
	f := uint32(r.Payload[0]) | uint32(r.Payload[1])<<8 | uint32(r.Payload[2])<<16 | uint32(r.Payload[3])<<24
	t := uint32(r.Payload[4]) | uint32(r.Payload[5])<<8 | uint32(r.Payload[6])<<16 | uint32(r.Payload[7])<<24
	return pagestore.PageID(f), pagestore.PageID(t), nil
}

// Commit decodes a RecCommit payload.
func (r Record) Commit() (uint64, error) {
	if r.Type != RecCommit || len(r.Payload) != 8 {
		return 0, fmt.Errorf("wal: not a commit record (type %d, %d bytes)", r.Type, len(r.Payload))
	}
	var seq uint64
	for i := 7; i >= 0; i-- {
		seq = seq<<8 | uint64(r.Payload[i])
	}
	return seq, nil
}

// Replay scans the log from the start, calling fn for every CRC-clean
// record in order, and stops — without error — at the first torn,
// corrupt or zeroed frame. It returns the byte length of the
// *committed* prefix — the offset just past the last valid commit
// record — and that commit's sequence. The caller truncates the file
// to committedLen before appending: clean-but-uncommitted tail frames
// must go too, or the next transaction's commit record would seal the
// orphaned records into itself. An error from fn aborts the scan and
// is returned.
//
// fn sees records from unfinished transactions too (frames after the
// last commit); the caller is responsible for buffering records per
// transaction and applying them only at commit records.
func Replay(f pagestore.File, fn func(Record) error) (committedLen int64, lastSeq uint64, err error) {
	size, err := f.Size()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: replay: %w", err)
	}
	var (
		off    int64
		header [8]byte
		buf    []byte
	)
	for off+frameHeaderLen <= size {
		if _, err := f.ReadAt(header[:], off); err != nil {
			break // unreadable tail: treat as torn
		}
		n := int(uint32(header[0]) | uint32(header[1])<<8 | uint32(header[2])<<16 | uint32(header[3])<<24)
		crc := uint32(header[4]) | uint32(header[5])<<8 | uint32(header[6])<<16 | uint32(header[7])<<24
		if n < 1 || n > maxFrame || off+8+int64(n) > size {
			break // zeroed preallocation, garbage length, or torn tail
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := f.ReadAt(buf, off+8); err != nil {
			break
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			break // torn or corrupt frame
		}
		rec := Record{Type: buf[0], Payload: buf[1:]}
		var commitSeq uint64
		if rec.Type == RecCommit {
			seq, err := rec.Commit()
			if err != nil {
				break // structurally invalid commit: stop the clean prefix here
			}
			commitSeq = seq
		}
		if err := fn(rec); err != nil {
			return committedLen, lastSeq, err
		}
		off += 8 + int64(n)
		if rec.Type == RecCommit {
			committedLen = off
			lastSeq = commitSeq
		}
	}
	return committedLen, lastSeq, nil
}
