package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"timber/internal/pagestore"
)

func cowStore(t *testing.T) *pagestore.Store {
	t.Helper()
	st, err := pagestore.CreateTemp(pagestore.Options{PageSize: 256, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestCOWSnapshotIsolation: a COW mutation must leave the original
// root's view byte-for-byte intact — including iteration order and
// values — while the new root sees the mutation.
func TestCOWSnapshotIsolation(t *testing.T) {
	st := cowStore(t)
	tr, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300 // several levels at 256-byte pages
	for i := 0; i < n; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "key%06d", i*2), fmt.Appendf(nil, "val%d", i*2)); err != nil {
			t.Fatal(err)
		}
	}
	oldRoot := tr.Root()

	c := tr.BeginCOW()
	for i := 0; i < n; i++ {
		if err := c.Insert(fmt.Appendf(nil, "key%06d", i*2+1), fmt.Appendf(nil, "new%d", i*2+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := c.Delete(fmt.Appendf(nil, "key%06d", i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Root() == oldRoot {
		t.Fatal("COW mutation did not move the root")
	}
	if len(c.Allocated()) == 0 || len(c.Freed()) == 0 {
		t.Fatalf("allocated %d / freed %d pages, want both nonzero", len(c.Allocated()), len(c.Freed()))
	}
	fresh := make(map[pagestore.PageID]struct{}, len(c.Allocated()))
	for _, id := range c.Allocated() {
		fresh[id] = struct{}{}
	}
	for _, id := range c.Freed() {
		if _, ok := fresh[id]; ok {
			t.Fatalf("freed page %d is also in the allocated set", id)
		}
	}

	// The old root still iterates exactly the original contents.
	oldView := Open(st, oldRoot)
	var gotOld []string
	it := oldView.Seek(nil)
	for it.Valid() {
		gotOld = append(gotOld, string(it.Key())+"="+string(it.Value()))
		it.Next()
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if len(gotOld) != n {
		t.Fatalf("old snapshot has %d keys, want %d", len(gotOld), n)
	}
	for i, kv := range gotOld {
		want := fmt.Sprintf("key%06d=val%d", i*2, i*2)
		if kv != want {
			t.Fatalf("old snapshot [%d] = %q, want %q", i, kv, want)
		}
	}

	// The new root sees inserts and deletes.
	newView := Open(st, c.Root())
	wantLen := n + n - (n+2)/3
	if got, err := newView.Len(); err != nil || got != wantLen {
		t.Fatalf("new snapshot Len = %d, %v, want %d", got, err, wantLen)
	}
	if _, err := newView.Get([]byte("key000000")); err == nil {
		t.Fatal("deleted key still present in new root")
	}
	if v, err := newView.Get([]byte("key000001")); err != nil || string(v) != "new1" {
		t.Fatalf("Get inserted key = %q, %v", v, err)
	}
	// Ordered iteration across the new root is still strictly sorted.
	it2 := newView.Seek(nil)
	var prev []byte
	count := 0
	for it2.Valid() {
		if prev != nil && bytes.Compare(prev, it2.Key()) >= 0 {
			t.Fatalf("iteration out of order: %q then %q", prev, it2.Key())
		}
		prev = append(prev[:0], it2.Key()...)
		count++
		it2.Next()
	}
	if err := it2.Close(); err != nil {
		t.Fatal(err)
	}
	if count != wantLen {
		t.Fatalf("new snapshot iterated %d cells, want %d", count, wantLen)
	}
}

// TestCOWFreshPagesMutateInPlace: pages allocated inside the same COW
// are reused, so k successive inserts do not allocate k full paths.
func TestCOWFreshPagesMutateInPlace(t *testing.T) {
	st := cowStore(t)
	tr, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "key%06d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.BeginCOW()
	// Two inserts into the same leaf: the second must ride the first's
	// shadow copies, so the allocation count must not double.
	if err := c.Insert([]byte("key000000x"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	after1 := len(c.Allocated())
	if err := c.Insert([]byte("key000000y"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if len(c.Allocated()) != after1 {
		t.Fatalf("second insert into a fresh path allocated %d new pages", len(c.Allocated())-after1)
	}
}

// TestCOWDeleteToEmpty: deleting every key leaves a structurally valid
// (possibly hollow) tree whose iteration is empty, and the old
// snapshot still sees everything.
func TestCOWDeleteToEmpty(t *testing.T) {
	st := cowStore(t)
	tr, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	for i := 0; i < n; i++ {
		if err := tr.Insert(fmt.Appendf(nil, "k%05d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	oldRoot := tr.Root()
	c := tr.BeginCOW()
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := c.Delete(fmt.Appendf(nil, "k%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete([]byte("k00000")); err == nil {
		t.Fatal("double delete should fail")
	}
	newView := Open(st, c.Root())
	if got, err := newView.Len(); err != nil || got != 0 {
		t.Fatalf("emptied tree Len = %d, %v", got, err)
	}
	if got, err := Open(st, oldRoot).Len(); err != nil || got != n {
		t.Fatalf("old snapshot Len = %d, %v, want %d", got, err, n)
	}
}

// TestStackIteratorMatchesChainFree: the iterator must produce the
// same sequence as a recursive in-order walk on a randomly grown tree,
// from every seek point.
func TestStackIteratorSeekPoints(t *testing.T) {
	st := cowStore(t)
	tr, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var keys []string
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%08d", rng.Intn(1_000_000))
		if err := tr.Insert([]byte(k), []byte("v")); err != nil {
			continue // duplicate
		}
		keys = append(keys, k)
	}
	// Sorted unique keys.
	sorted := append([]string(nil), keys...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for trial := 0; trial < 50; trial++ {
		seek := fmt.Sprintf("k%08d", rng.Intn(1_000_000))
		want := len(sorted)
		for i, k := range sorted {
			if k >= seek {
				want = i
				break
			}
		}
		it := tr.Seek([]byte(seek))
		got := 0
		for it.Valid() {
			if string(it.Key()) != sorted[want+got] {
				t.Fatalf("seek %q: cell %d = %q, want %q", seek, got, it.Key(), sorted[want+got])
			}
			got++
			it.Next()
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if got != len(sorted)-want {
			t.Fatalf("seek %q: iterated %d, want %d", seek, got, len(sorted)-want)
		}
	}
}
