package btree

import (
	"bytes"
	"errors"
	"fmt"

	"timber/internal/pagestore"
)

// COW is a copy-on-write mutation of a tree: inserts and deletes build
// a new root whose path pages are fresh copies, while every page of
// the original tree stays byte-for-byte untouched. Readers holding the
// old root keep a consistent snapshot for as long as the superseded
// pages are preserved; the caller commits by persisting Root() and
// eventually retiring Freed() once no snapshot can still reach them,
// or aborts by discarding Allocated().
//
// Pages allocated by this COW (including the copies themselves) are
// mutated in place on later operations — they are invisible to every
// reader until the new root is published, so re-copying them would
// only burn pages. The allocated set is exactly what a write-ahead log
// must capture: no page outside it is written.
//
// Deletion does not rebalance: leaves may empty out and internal nodes
// keep their fan-out. The workload deletes whole documents from
// indexes that otherwise only grow, so the slack is reclaimed by the
// next offline rebuild rather than paid for on every delete (and the
// iterator skips empty leaves).
//
// A COW is single-goroutine; concurrency comes from snapshots, not
// from sharing the mutation handle.
type COW struct {
	st    *pagestore.Store
	m     *Metrics
	root  pagestore.PageID
	fresh map[pagestore.PageID]struct{}
	alloc []pagestore.PageID // allocation order, for logging
	freed []pagestore.PageID // superseded committed pages
}

// BeginCOW starts a copy-on-write mutation over the tree's current
// root. The tree handle itself is never modified.
func (t *Tree) BeginCOW() *COW {
	return &COW{st: t.st, m: t.m, root: t.root, fresh: make(map[pagestore.PageID]struct{})}
}

// Root returns the mutation's current root page. After the first
// insert or delete it differs from the original tree's root.
func (c *COW) Root() pagestore.PageID { return c.root }

// Allocated returns every page this mutation allocated, in allocation
// order.
func (c *COW) Allocated() []pagestore.PageID { return c.alloc }

// Freed returns the committed pages this mutation superseded. They are
// still intact — readers of the old root may be traversing them — and
// must only be reclaimed once every snapshot that could reach them is
// closed.
func (c *COW) Freed() []pagestore.PageID { return c.freed }

// MaxCell mirrors Tree.MaxCell for the underlying store.
func (c *COW) MaxCell() int { return MaxCellFor(c.st.PageSize()) }

func (c *COW) readNode(id pagestore.PageID) (*node, error) {
	p, err := c.st.Fetch(id)
	if err != nil {
		return nil, err
	}
	c.m.visit()
	defer c.st.Unpin(p, false)
	return decode(p.Data())
}

func (c *COW) allocNode(n *node) (pagestore.PageID, error) {
	p, err := c.st.Allocate()
	if err != nil {
		return 0, err
	}
	n.encode(p.Data())
	id := p.ID()
	c.st.Unpin(p, true)
	c.fresh[id] = struct{}{}
	c.alloc = append(c.alloc, id)
	return id, nil
}

// writeShadow persists n under id if this mutation already owns the
// page, or under a fresh copy otherwise (recording the superseded
// page), returning the id the parent must now point at.
func (c *COW) writeShadow(id pagestore.PageID, n *node) (pagestore.PageID, error) {
	if _, ok := c.fresh[id]; ok {
		p, err := c.st.Fetch(id)
		if err != nil {
			return 0, err
		}
		n.encode(p.Data())
		c.st.Unpin(p, true)
		return id, nil
	}
	c.freed = append(c.freed, id)
	return c.allocNode(n)
}

// setChild repoints child ordinal i (0 = leftmost) of n at newID.
func (n *node) setChild(i int, newID pagestore.PageID) {
	if i == 0 {
		n.left = newID
	} else {
		n.cells[i-1].child = newID
	}
}

// childIndexFor returns the ordinal of the child to descend into for
// key (0 = leftmost) together with its page, mirroring childFor.
func (n *node) childIndexFor(key []byte) (int, pagestore.PageID) {
	i := searchCells(n.cells, key)
	if i < len(n.cells) && bytes.Equal(n.cells[i].key, key) {
		return i + 1, n.cells[i].child
	}
	if i == 0 {
		return 0, n.left
	}
	return i, n.cells[i-1].child
}

// Insert stores value under key through the shadow path. Keys must be
// unique; inserting an existing key returns ErrDuplicate.
func (c *COW) Insert(key, value []byte) error {
	if len(key)+len(value) > c.MaxCell() {
		return fmt.Errorf("btree: cell of %d bytes exceeds max %d", len(key)+len(value), c.MaxCell())
	}
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	newRoot, split, sep, right, err := c.insertInto(c.root, key, value)
	if err != nil {
		return err
	}
	c.root = newRoot
	if !split {
		return nil
	}
	// Root split: grow a new root (fresh by construction).
	id, err := c.allocNode(&node{left: c.root, cells: []cell{{key: sep, child: right}}})
	if err != nil {
		return err
	}
	c.root = id
	return nil
}

// insertInto mirrors Tree.insertInto with shadowed writes: it returns
// the (possibly fresh) id now holding this subtree, plus split results
// for the parent to absorb.
func (c *COW) insertInto(id pagestore.PageID, key, value []byte) (newID pagestore.PageID, split bool, sep []byte, right pagestore.PageID, err error) {
	n, err := c.readNode(id)
	if err != nil {
		return 0, false, nil, 0, err
	}
	if n.leaf {
		i := searchCells(n.cells, key)
		if i < len(n.cells) && bytes.Equal(n.cells[i].key, key) {
			return 0, false, nil, 0, fmt.Errorf("%w: %q", ErrDuplicate, key)
		}
		n.cells = append(n.cells, cell{})
		copy(n.cells[i+1:], n.cells[i:])
		n.cells[i] = cell{key: append([]byte(nil), key...), value: append([]byte(nil), value...)}
	} else {
		ci, childID := n.childIndexFor(key)
		newChild, childSplit, csep, cright, err := c.insertInto(childID, key, value)
		if err != nil {
			return 0, false, nil, 0, err
		}
		if !childSplit && newChild == childID {
			return id, false, nil, 0, nil // subtree already fresh, nothing changed here
		}
		n.setChild(ci, newChild)
		if childSplit {
			i := searchCells(n.cells, csep)
			n.cells = append(n.cells, cell{})
			copy(n.cells[i+1:], n.cells[i:])
			n.cells[i] = cell{key: csep, child: cright}
		}
	}
	if n.encodedSize() <= c.st.PageSize() {
		newID, err = c.writeShadow(id, n)
		return newID, false, nil, 0, err
	}
	sep, right, err = c.split(n)
	if err != nil {
		return 0, false, nil, 0, err
	}
	newID, err = c.writeShadow(id, n)
	return newID, true, sep, right, err
}

// split mirrors Tree.split; the new right sibling is fresh by
// construction, the left half is written by the caller via
// writeShadow.
func (c *COW) split(n *node) ([]byte, pagestore.PageID, error) {
	mid := len(n.cells) / 2
	var sep []byte
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.cells = append(right.cells, n.cells[mid:]...)
		right.next = n.next
		sep = right.cells[0].key
	} else {
		sep = n.cells[mid].key
		right.left = n.cells[mid].child
		right.cells = append(right.cells, n.cells[mid+1:]...)
	}
	rightID, err := c.allocNode(right)
	if err != nil {
		return nil, 0, err
	}
	if n.leaf {
		n.cells = n.cells[:mid]
		n.next = rightID
	} else {
		n.cells = n.cells[:mid]
	}
	return sep, rightID, nil
}

// Delete removes key. It returns ErrNotFound if the key is absent;
// the tree is structurally unchanged in that case.
func (c *COW) Delete(key []byte) error {
	newRoot, found, err := c.deleteFrom(c.root, key)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	c.root = newRoot
	return nil
}

// deleteFrom removes key from the subtree at id, returning the
// (possibly fresh) id now holding it. No rebalancing: an emptied leaf
// stays in the tree and is skipped by iteration.
func (c *COW) deleteFrom(id pagestore.PageID, key []byte) (newID pagestore.PageID, found bool, err error) {
	n, err := c.readNode(id)
	if err != nil {
		return 0, false, err
	}
	if n.leaf {
		i := searchCells(n.cells, key)
		if i >= len(n.cells) || !bytes.Equal(n.cells[i].key, key) {
			return id, false, nil
		}
		n.cells = append(n.cells[:i], n.cells[i+1:]...)
		newID, err = c.writeShadow(id, n)
		return newID, true, err
	}
	ci, childID := n.childIndexFor(key)
	newChild, found, err := c.deleteFrom(childID, key)
	if err != nil || !found {
		return id, found, err
	}
	if newChild == childID {
		return id, true, nil // child was already fresh and updated in place
	}
	n.setChild(ci, newChild)
	newID, err = c.writeShadow(id, n)
	return newID, true, err
}
