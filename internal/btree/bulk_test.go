package btree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"timber/internal/pagestore"
)

func bulkPairs(n int) []KV {
	kvs := make([]KV, n)
	for i := range kvs {
		kvs[i] = KV{
			Key:   []byte(fmt.Sprintf("key-%06d", i)),
			Value: []byte(fmt.Sprintf("val-%d", i)),
		}
	}
	return kvs
}

func TestBulkLoadBasic(t *testing.T) {
	st, _ := testTree(t, 256)
	kvs := bulkPairs(1000)
	tr, err := BulkLoad(st, kvs)
	if err != nil {
		t.Fatal(err)
	}
	l, err := tr.Len()
	if err != nil || l != 1000 {
		t.Fatalf("Len = %d, %v", l, err)
	}
	for _, kv := range kvs {
		v, err := tr.Get(kv.Key)
		if err != nil {
			t.Fatalf("Get(%s): %v", kv.Key, err)
		}
		if string(v) != string(kv.Value) {
			t.Errorf("Get(%s) = %s", kv.Key, v)
		}
	}
	// Ordered iteration covers everything.
	i := 0
	for it := tr.Seek(nil); it.Valid(); it.Next() {
		if string(it.Key()) != string(kvs[i].Key) {
			t.Fatalf("iter %d = %s, want %s", i, it.Key(), kvs[i].Key)
		}
		i++
	}
	if i != 1000 {
		t.Errorf("iterated %d", i)
	}
	h, err := tr.Height()
	if err != nil || h < 2 {
		t.Errorf("height = %d, %v (expected multi-level)", h, err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	st, _ := testTree(t, 256)
	tr, err := BulkLoad(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Get([]byte("x")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty bulk tree: %v", err)
	}
	if it := tr.Seek(nil); it.Valid() {
		t.Error("empty tree iterator should be invalid")
	}
	// Inserts after an empty bulk load work.
	if err := tr.Insert([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get([]byte("a")); string(v) != "1" {
		t.Error("insert after empty bulk load failed")
	}
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	st, _ := testTree(t, 256)
	if _, err := BulkLoad(st, []KV{{Key: []byte("b")}, {Key: []byte("a")}}); err == nil {
		t.Error("unsorted keys should be rejected")
	}
	if _, err := BulkLoad(st, []KV{{Key: []byte("a")}, {Key: []byte("a")}}); err == nil {
		t.Error("duplicate keys should be rejected")
	}
	if _, err := BulkLoad(st, []KV{{Key: nil}}); err == nil {
		t.Error("empty key should be rejected")
	}
	if _, err := BulkLoad(st, []KV{{Key: []byte("k"), Value: make([]byte, 300)}}); err == nil {
		t.Error("oversized cell should be rejected")
	}
}

func TestBulkLoadThenInsert(t *testing.T) {
	st, _ := testTree(t, 256)
	kvs := bulkPairs(500)
	// Load the even keys, insert the odd ones incrementally.
	var even []KV
	for i, kv := range kvs {
		if i%2 == 0 {
			even = append(even, kv)
		}
	}
	tr, err := BulkLoad(st, even)
	if err != nil {
		t.Fatal(err)
	}
	for i, kv := range kvs {
		if i%2 == 1 {
			if err := tr.Insert(kv.Key, kv.Value); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
	}
	for _, kv := range kvs {
		if v, err := tr.Get(kv.Key); err != nil || string(v) != string(kv.Value) {
			t.Fatalf("Get(%s) = %s, %v", kv.Key, v, err)
		}
	}
	if err := tr.Insert(kvs[0].Key, nil); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate after bulk load: %v", err)
	}
}

// TestBulkLoadEqualsInsertProperty: a bulk-loaded tree behaves exactly
// like an insert-built tree over the same random pairs.
func TestBulkLoadEqualsInsertProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400)
		set := map[string]string{}
		for i := 0; i < n; i++ {
			set[fmt.Sprintf("%04x", rng.Intn(1<<16))] = fmt.Sprintf("%d", rng.Int())
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kvs := make([]KV, len(keys))
		for i, k := range keys {
			kvs[i] = KV{Key: []byte(k), Value: []byte(set[k])}
		}

		st, err := pagestore.CreateTemp(pagestore.Options{PageSize: 256, PoolPages: 64})
		if err != nil {
			return false
		}
		defer st.Close()
		bulk, err := BulkLoad(st, kvs)
		if err != nil {
			return false
		}
		ins, err := New(st)
		if err != nil {
			return false
		}
		for _, kv := range kvs {
			if err := ins.Insert(kv.Key, kv.Value); err != nil {
				return false
			}
		}
		// Same contents in the same order.
		bi, ii := bulk.Seek(nil), ins.Seek(nil)
		for bi.Valid() && ii.Valid() {
			if string(bi.Key()) != string(ii.Key()) || string(bi.Value()) != string(ii.Value()) {
				return false
			}
			bi.Next()
			ii.Next()
		}
		return !bi.Valid() && !ii.Valid() && bi.Err() == nil && ii.Err() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
