package btree

import "timber/internal/pagestore"

// TreeStats is a size breakdown of a tree, produced by PageStats. Byte
// figures count the usable page size for every page the tree occupies,
// so they reflect the tree's claim on the store, not just live cells.
type TreeStats struct {
	// Pages is the total number of pages (leaf + internal).
	Pages uint32
	// LeafPages is the number of leaf pages.
	LeafPages uint32
	// Cells is the number of leaf cells (keys).
	Cells uint64
	// CellBytes is the total encoded key+value payload in leaf cells.
	CellBytes uint64
}

// PageStats walks the whole tree and returns its size breakdown. Size
// reporting only — it fetches every page in the tree.
func (t *Tree) PageStats() (TreeStats, error) {
	var st TreeStats
	err := t.pageStats(t.root, &st)
	return st, err
}

func (t *Tree) pageStats(id pagestore.PageID, st *TreeStats) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	st.Pages++
	if n.leaf {
		st.LeafPages++
		st.Cells += uint64(len(n.cells))
		for _, c := range n.cells {
			st.CellBytes += uint64(len(c.key) + len(c.value))
		}
		return nil
	}
	if err := t.pageStats(n.left, st); err != nil {
		return err
	}
	for _, c := range n.cells {
		if err := t.pageStats(c.child, st); err != nil {
			return err
		}
	}
	return nil
}
