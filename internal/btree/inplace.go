package btree

import (
	"bytes"

	"timber/internal/pagestore"
)

// This file implements allocation-free search over encoded node pages.
// Decoding a node copies every cell, which is fine for scans (the cost
// amortizes over the whole leaf) but dominates point lookups: a locator
// probe would otherwise copy hundreds of cells per level. Get and the
// Seek descent therefore scan the encoded bytes in place while the page
// is pinned, allocating only the final returned value.

// internalChildEncoded returns the child page to descend into for key,
// scanning an encoded internal node in place. Same semantics as
// (*node).childFor.
func internalChildEncoded(data []byte, key []byte) pagestore.PageID {
	num := int(uint16(data[1]) | uint16(data[2])<<8)
	left := pagestore.PageID(uint32(data[3]) | uint32(data[4])<<8 | uint32(data[5])<<16 | uint32(data[6])<<24)
	off := nodeOverhead
	prev := left
	for i := 0; i < num; i++ {
		klen := int(uint16(data[off]) | uint16(data[off+1])<<8)
		off += 2
		cellKey := data[off : off+klen]
		off += klen
		child := pagestore.PageID(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 4
		switch bytes.Compare(cellKey, key) {
		case 0:
			return child
		case 1: // cellKey > key: the key lives left of this separator
			return prev
		}
		prev = child
	}
	return prev
}

// internalChildIndex is internalChildEncoded returning the child's
// ordinal as well: 0 is the leftmost child, k is cells[k-1].child. The
// iterator's parent stack stores the ordinal so it can resume the
// descent one child to the right when a leaf is exhausted.
func internalChildIndex(data []byte, key []byte) (int, pagestore.PageID) {
	num := int(uint16(data[1]) | uint16(data[2])<<8)
	left := pagestore.PageID(uint32(data[3]) | uint32(data[4])<<8 | uint32(data[5])<<16 | uint32(data[6])<<24)
	off := nodeOverhead
	prev, prevIdx := left, 0
	for i := 0; i < num; i++ {
		klen := int(uint16(data[off]) | uint16(data[off+1])<<8)
		off += 2
		cellKey := data[off : off+klen]
		off += klen
		child := pagestore.PageID(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 4
		switch bytes.Compare(cellKey, key) {
		case 0:
			return i + 1, child
		case 1:
			return prevIdx, prev
		}
		prev, prevIdx = child, i+1
	}
	return prevIdx, prev
}

// internalChildAt returns child number i of an encoded internal node
// (0 = leftmost child, k = cells[k-1].child).
func internalChildAt(data []byte, i int) pagestore.PageID {
	if i == 0 {
		return pagestore.PageID(uint32(data[3]) | uint32(data[4])<<8 | uint32(data[5])<<16 | uint32(data[6])<<24)
	}
	off := nodeOverhead
	for k := 1; ; k++ {
		klen := int(uint16(data[off]) | uint16(data[off+1])<<8)
		off += 2 + klen
		if k == i {
			return pagestore.PageID(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		}
		off += 4
	}
}

// internalNumChildren returns the child count of an encoded internal
// node (separator count plus one).
func internalNumChildren(data []byte) int {
	return int(uint16(data[1])|uint16(data[2])<<8) + 1
}

// leafSearchEncoded locates key in an encoded leaf, returning the value
// bounds within data. found is false when the key is absent.
func leafSearchEncoded(data []byte, key []byte) (valOff, valLen int, found bool) {
	num := int(uint16(data[1]) | uint16(data[2])<<8)
	off := nodeOverhead
	for i := 0; i < num; i++ {
		klen := int(uint16(data[off]) | uint16(data[off+1])<<8)
		vlen := int(uint16(data[off+2]) | uint16(data[off+3])<<8)
		off += 4
		cellKey := data[off : off+klen]
		off += klen
		switch bytes.Compare(cellKey, key) {
		case 0:
			return off, vlen, true
		case 1: // sorted: passed the insertion point
			return 0, 0, false
		}
		off += vlen
	}
	return 0, 0, false
}

// getFast is the allocation-free Get implementation.
func (t *Tree) getFast(key []byte) ([]byte, error) {
	id := t.root
	for {
		p, err := t.st.Fetch(id)
		if err != nil {
			return nil, err
		}
		t.m.visit()
		data := p.Data()
		if data[0]&flagLeaf != 0 {
			valOff, valLen, found := leafSearchEncoded(data, key)
			if !found {
				t.st.Unpin(p, false)
				return nil, ErrNotFound
			}
			out := make([]byte, valLen)
			copy(out, data[valOff:valOff+valLen])
			t.st.Unpin(p, false)
			return out, nil
		}
		next := internalChildEncoded(data, key)
		t.st.Unpin(p, false)
		id = next
	}
}
