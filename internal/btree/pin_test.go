package btree

import (
	"fmt"
	"testing"
)

// TestIteratorPinHygiene verifies the pinned-cursor discipline: an open
// iterator holds its leaf pinned (DropCache must refuse), and Close (or
// exhaustion) releases it.
func TestIteratorPinHygiene(t *testing.T) {
	st, tr := testTree(t, 256)
	for i := 0; i < 50; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("%03d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Seek(nil)
	if !it.Valid() {
		t.Fatal("iterator should be valid")
	}
	if err := st.DropCache(); err == nil {
		t.Error("DropCache should refuse while an iterator pins a leaf")
	}
	it.Close()
	if err := st.DropCache(); err != nil {
		t.Errorf("DropCache after Close: %v", err)
	}

	// Exhaustion auto-closes.
	it2 := tr.Seek(nil)
	for it2.Valid() {
		it2.Next()
	}
	if err := st.DropCache(); err != nil {
		t.Errorf("DropCache after exhaustion: %v", err)
	}
}

// TestIteratorAliasingContract documents that Key/Value alias the page:
// copies taken before Next survive, and ScanPrefix callbacks that
// retain slices must copy.
func TestIteratorAliasingContract(t *testing.T) {
	_, tr := testTree(t, 256)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("%03d", i)
		if err := tr.Insert([]byte(k), []byte("v"+k)); err != nil {
			t.Fatal(err)
		}
	}
	var copies []string
	err := tr.ScanPrefix(nil, func(k, v []byte) bool {
		copies = append(copies, string(k)+"="+string(v))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(copies) != 200 {
		t.Fatalf("scanned %d", len(copies))
	}
	for i, c := range copies {
		want := fmt.Sprintf("%03d=v%03d", i, i)
		if c != want {
			t.Fatalf("copy %d = %s, want %s", i, c, want)
		}
	}
}
