// Package btree implements a disk-backed B+tree over the page store. It
// is the index substrate of the TIMBER-style Index Manager: the tag-name
// index and the (tag, content) value index are both B+trees.
//
// Keys are arbitrary byte strings and must be unique; multi-maps (a tag
// index posting many nodes under one tag) are obtained by appending a
// unique suffix — typically the node identifier — to the user key and
// scanning by prefix. Values are opaque byte strings. The tree supports
// insertion, exact lookup, and ordered iteration from a seek key, which
// together cover everything index construction and pattern matching
// (Sec. 5.2 of the paper) require. The workload is bulk-load-then-query,
// so deletion is intentionally not provided.
//
// Node pages are decoded into small in-memory structs, modified, and
// re-encoded; splits propagate upward and may grow a new root. The root
// page ID after loading must be persisted by the caller (the metadata
// manager does this).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"timber/internal/pagestore"
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("btree: key not found")

// ErrDuplicate is returned by Insert when the key is already present.
var ErrDuplicate = errors.New("btree: duplicate key")

const (
	flagLeaf     = 1
	nodeOverhead = 7 // flags(1) + numCells(2) + next/child0(4)
)

// Tree is a B+tree rooted at a page of a store.
type Tree struct {
	st   *pagestore.Store
	root pagestore.PageID
	m    *Metrics // optional traversal counters; nil = uninstrumented
}

// New creates an empty tree in the store.
func New(st *pagestore.Store) (*Tree, error) {
	p, err := st.Allocate()
	if err != nil {
		return nil, fmt.Errorf("btree: new: %w", err)
	}
	leaf := &node{leaf: true, next: pagestore.InvalidPage}
	leaf.encode(p.Data())
	st.Unpin(p, true)
	return &Tree{st: st, root: p.ID()}, nil
}

// Open reopens a tree whose root page is known.
func Open(st *pagestore.Store, root pagestore.PageID) *Tree {
	return &Tree{st: st, root: root}
}

// Root returns the current root page ID. It changes when the root
// splits, so callers persist it after loading completes.
func (t *Tree) Root() pagestore.PageID { return t.root }

// MaxCell returns the largest key+value byte total a tree in the store
// can accept. It guarantees a post-split node can always host the cell.
func (t *Tree) MaxCell() int { return MaxCellFor(t.st.PageSize()) }

// MaxCellFor returns the MaxCell bound for a given usable page size,
// for callers that size cells before a tree exists (bulk-load planning).
func MaxCellFor(pageSize int) int { return (pageSize - nodeOverhead) / 4 }

// cell is one key/value pair in a leaf, or one separator/child pair in
// an internal node (value unused there).
type cell struct {
	key   []byte
	value []byte           // leaf only
	child pagestore.PageID // internal only: subtree with keys >= key
}

// node is the decoded form of a B+tree page.
//
// Encoding (little endian):
//
//	[0]    flags (1 = leaf)
//	[1:3)  numCells
//	[3:7)  leaf: next leaf PageID; internal: leftmost child PageID
//	cells: leaf:     {klen u16, vlen u16, key, value}*
//	       internal: {klen u16, key, child u32}*
type node struct {
	leaf  bool
	next  pagestore.PageID // leaf chain
	left  pagestore.PageID // internal: leftmost child
	cells []cell

	// firstSep is the smallest key in the node's subtree. It is used
	// only while bulk-loading (to pass separators up a level) and is
	// not encoded on the page.
	firstSep []byte
}

func decode(data []byte) (*node, error) {
	n := &node{leaf: data[0]&flagLeaf != 0}
	num := int(binary.LittleEndian.Uint16(data[1:3]))
	p := binary.LittleEndian.Uint32(data[3:7])
	if n.leaf {
		n.next = pagestore.PageID(p)
	} else {
		n.left = pagestore.PageID(p)
	}
	off := nodeOverhead
	for i := 0; i < num; i++ {
		var c cell
		if off+2 > len(data) {
			return nil, errors.New("btree: corrupt node (key length)")
		}
		klen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if n.leaf {
			if off+2 > len(data) {
				return nil, errors.New("btree: corrupt node (value length)")
			}
			vlen := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if off+klen+vlen > len(data) {
				return nil, errors.New("btree: corrupt node (cell body)")
			}
			c.key = append([]byte(nil), data[off:off+klen]...)
			off += klen
			c.value = append([]byte(nil), data[off:off+vlen]...)
			off += vlen
		} else {
			if off+klen+4 > len(data) {
				return nil, errors.New("btree: corrupt node (separator)")
			}
			c.key = append([]byte(nil), data[off:off+klen]...)
			off += klen
			c.child = pagestore.PageID(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		n.cells = append(n.cells, c)
	}
	return n, nil
}

func (n *node) encodedSize() int {
	size := nodeOverhead
	for _, c := range n.cells {
		if n.leaf {
			size += 4 + len(c.key) + len(c.value)
		} else {
			size += 6 + len(c.key)
		}
	}
	return size
}

func (n *node) encode(data []byte) {
	var flags byte
	if n.leaf {
		flags |= flagLeaf
	}
	data[0] = flags
	binary.LittleEndian.PutUint16(data[1:3], uint16(len(n.cells)))
	if n.leaf {
		binary.LittleEndian.PutUint32(data[3:7], uint32(n.next))
	} else {
		binary.LittleEndian.PutUint32(data[3:7], uint32(n.left))
	}
	off := nodeOverhead
	for _, c := range n.cells {
		binary.LittleEndian.PutUint16(data[off:], uint16(len(c.key)))
		off += 2
		if n.leaf {
			binary.LittleEndian.PutUint16(data[off:], uint16(len(c.value)))
			off += 2
			off += copy(data[off:], c.key)
			off += copy(data[off:], c.value)
		} else {
			off += copy(data[off:], c.key)
			binary.LittleEndian.PutUint32(data[off:], uint32(c.child))
			off += 4
		}
	}
	// Zero the remainder so stale bytes never resurface after shrink.
	for i := off; i < len(data); i++ {
		data[i] = 0
	}
}

func (t *Tree) readNode(id pagestore.PageID) (*node, error) {
	p, err := t.st.Fetch(id)
	if err != nil {
		return nil, err
	}
	t.m.visit()
	defer t.st.Unpin(p, false)
	return decode(p.Data())
}

func (t *Tree) writeNode(id pagestore.PageID, n *node) error {
	p, err := t.st.Fetch(id)
	if err != nil {
		return err
	}
	n.encode(p.Data())
	t.st.Unpin(p, true)
	return nil
}

func (t *Tree) allocNode(n *node) (pagestore.PageID, error) {
	p, err := t.st.Allocate()
	if err != nil {
		return 0, err
	}
	n.encode(p.Data())
	id := p.ID()
	t.st.Unpin(p, true)
	return id, nil
}

// searchCells returns the index of the first cell whose key is >= key.
func searchCells(cells []cell, key []byte) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cells[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the child page to descend into for key.
func (n *node) childFor(key []byte) pagestore.PageID {
	// Internal separators: child holds keys >= separator; left holds
	// keys below the first separator.
	i := searchCells(n.cells, key)
	// cells[i].key >= key; descend into the child left of it unless the
	// separator equals key, in which case the key lives at/after it.
	if i < len(n.cells) && bytes.Equal(n.cells[i].key, key) {
		return n.cells[i].child
	}
	if i == 0 {
		return n.left
	}
	return n.cells[i-1].child
}

// Get returns the value stored under key, or ErrNotFound. The descent
// scans encoded pages in place (see inplace.go), so a point lookup
// allocates only the returned value.
func (t *Tree) Get(key []byte) ([]byte, error) {
	return t.getFast(key)
}

// split divides an overfull node, returning the separator key and the
// new right sibling's page ID. The left half stays in place (written by
// the caller).
func (t *Tree) split(n *node) ([]byte, pagestore.PageID, error) {
	mid := len(n.cells) / 2
	var sep []byte
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.cells = append(right.cells, n.cells[mid:]...)
		right.next = n.next
		sep = right.cells[0].key
	} else {
		// The middle separator moves up; its child becomes the new
		// right node's leftmost child.
		sep = n.cells[mid].key
		right.left = n.cells[mid].child
		right.cells = append(right.cells, n.cells[mid+1:]...)
	}
	rightID, err := t.allocNode(right)
	if err != nil {
		return nil, 0, err
	}
	if n.leaf {
		n.cells = n.cells[:mid]
		n.next = rightID
	} else {
		n.cells = n.cells[:mid]
	}
	return sep, rightID, nil
}

// insertInto inserts key/value under page id. On overflow it splits and
// returns split=true plus the separator and new right page for the
// parent to absorb.
func (t *Tree) insertInto(id pagestore.PageID, key, value []byte) (split bool, sep []byte, right pagestore.PageID, err error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, nil, 0, err
	}
	if n.leaf {
		i := searchCells(n.cells, key)
		if i < len(n.cells) && bytes.Equal(n.cells[i].key, key) {
			return false, nil, 0, fmt.Errorf("%w: %q", ErrDuplicate, key)
		}
		n.cells = append(n.cells, cell{})
		copy(n.cells[i+1:], n.cells[i:])
		n.cells[i] = cell{key: append([]byte(nil), key...), value: append([]byte(nil), value...)}
	} else {
		childID := n.childFor(key)
		childSplit, csep, cright, err := t.insertInto(childID, key, value)
		if err != nil {
			return false, nil, 0, err
		}
		if !childSplit {
			return false, nil, 0, nil // nothing changed at this level
		}
		i := searchCells(n.cells, csep)
		n.cells = append(n.cells, cell{})
		copy(n.cells[i+1:], n.cells[i:])
		n.cells[i] = cell{key: csep, child: cright}
	}
	if n.encodedSize() <= t.st.PageSize() {
		return false, nil, 0, t.writeNode(id, n)
	}
	sep, right, err = t.split(n)
	if err != nil {
		return false, nil, 0, err
	}
	return true, sep, right, t.writeNode(id, n)
}

// Insert stores value under key. Keys must be unique; inserting an
// existing key returns ErrDuplicate. key+value must not exceed MaxCell.
func (t *Tree) Insert(key, value []byte) error {
	if len(key)+len(value) > t.MaxCell() {
		return fmt.Errorf("btree: cell of %d bytes exceeds max %d", len(key)+len(value), t.MaxCell())
	}
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	split, sep, right, err := t.insertInto(t.root, key, value)
	if err != nil {
		return err
	}
	if !split {
		return nil
	}
	// Root split: grow a new root.
	newRoot := &node{left: t.root, cells: []cell{{key: sep, child: right}}}
	id, err := t.allocNode(newRoot)
	if err != nil {
		return err
	}
	t.root = id
	return nil
}

// Len returns the number of keys in the tree. It iterates every cell
// (through the parent stack, not the leaf chain — the chain is stale
// on COW-updated trees) and is intended for tests and statistics, not
// hot paths.
func (t *Tree) Len() (int, error) {
	total := 0
	it := t.Seek(nil)
	for it.Valid() {
		total++
		it.Next()
	}
	return total, it.Close()
}

// Height returns the number of levels in the tree (1 for a lone leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			return h, nil
		}
		h++
		id = n.left
	}
}
