package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"timber/internal/pagestore"
)

func testTree(t *testing.T, pageSize int) (*pagestore.Store, *Tree) {
	t.Helper()
	st, err := pagestore.CreateTemp(pagestore.Options{PageSize: pageSize, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	tr, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	return st, tr
}

func TestInsertGet(t *testing.T) {
	_, tr := testTree(t, 256)
	pairs := map[string]string{"b": "2", "a": "1", "c": "3", "aa": "11"}
	for k, v := range pairs {
		if err := tr.Insert([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range pairs {
		got, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Errorf("Get(%q) = %q, want %q", k, got, v)
		}
	}
	if _, err := tr.Get([]byte("zz")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(zz) err = %v, want ErrNotFound", err)
	}
}

func TestDuplicateKey(t *testing.T) {
	_, tr := testTree(t, 256)
	if err := tr.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("k"), []byte("w")); !errors.Is(err, ErrDuplicate) {
		t.Errorf("second insert err = %v, want ErrDuplicate", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	_, tr := testTree(t, 256)
	if err := tr.Insert(nil, []byte("v")); err == nil {
		t.Error("empty key should be rejected")
	}
}

func TestOversizedCellRejected(t *testing.T) {
	_, tr := testTree(t, 256)
	big := make([]byte, tr.MaxCell()+1)
	if err := tr.Insert(big[:1], big); err == nil {
		t.Error("oversized cell should be rejected")
	}
}

func TestSplitsAndHeightGrowth(t *testing.T) {
	_, tr := testTree(t, 256) // tiny pages force deep trees
	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := tr.Insert(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Errorf("height = %d, expected a multi-level tree", h)
	}
	l, err := tr.Len()
	if err != nil {
		t.Fatal(err)
	}
	if l != n {
		t.Errorf("Len = %d, want %d", l, n)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after splits: %v", k, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Errorf("Get(%s) = %s", k, v)
		}
	}
}

func TestIterationOrder(t *testing.T) {
	_, tr := testTree(t, 256)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for _, k := range keys {
		if err := tr.Insert([]byte(k), []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for it := tr.Seek(nil); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
		if want := "v:" + string(it.Key()); string(it.Value()) != want {
			t.Errorf("value for %s = %s", it.Key(), it.Value())
		}
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("iteration = %v, want %v", got, want)
	}
}

func TestSeekMidway(t *testing.T) {
	_, tr := testTree(t, 256)
	for i := 0; i < 100; i += 2 { // even keys only
		k := []byte(fmt.Sprintf("%04d", i))
		if err := tr.Insert(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Seek([]byte("0051")) // absent; next is 0052
	if !it.Valid() || string(it.Key()) != "0052" {
		t.Errorf("Seek(0051) at %q valid=%v", it.Key(), it.Valid())
	}
	it.Close()
	it = tr.Seek([]byte("0052")) // present
	if !it.Valid() || string(it.Key()) != "0052" {
		t.Errorf("Seek(0052) at %q", it.Key())
	}
	it.Close()
	it.Close()                   // idempotent
	it = tr.Seek([]byte("9999")) // past the end
	if it.Valid() {
		t.Error("Seek past end should be invalid")
	}
	if it.Err() != nil {
		t.Errorf("Seek past end err = %v", it.Err())
	}
	it.Close()
}

func TestScanPrefix(t *testing.T) {
	_, tr := testTree(t, 512)
	for _, k := range []string{"tag/article/1", "tag/article/2", "tag/author/1", "tag/title/9", "tagx"} {
		if err := tr.Insert([]byte(k), nil); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.ScanPrefix([]byte("tag/article/"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[tag/article/1 tag/article/2]" {
		t.Errorf("prefix scan = %v", got)
	}
	// Early stop.
	count := 0
	err = tr.ScanPrefix([]byte("tag/"), func(_, _ []byte) bool {
		count++
		return false
	})
	if err != nil || count != 1 {
		t.Errorf("early stop: count=%d err=%v", count, err)
	}
}

func TestScanRange(t *testing.T) {
	_, tr := testTree(t, 512)
	for i := 0; i < 20; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("%02d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.ScanRange([]byte("05"), []byte("09"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[05 06 07 08]" {
		t.Errorf("range scan = %v", got)
	}
	// Unbounded hi.
	got = nil
	err = tr.ScanRange([]byte("18"), nil, func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil || fmt.Sprint(got) != "[18 19]" {
		t.Errorf("unbounded scan = %v err=%v", got, err)
	}
}

func TestReopenTree(t *testing.T) {
	st, tr := testTree(t, 256)
	for i := 0; i < 200; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("%04d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.Root()
	tr2 := Open(st, root)
	v, err := tr2.Get([]byte("0123"))
	if err != nil || v[0] != 123 {
		t.Errorf("reopened Get = %v, %v", v, err)
	}
}

// TestTreeMatchesSortedMapProperty inserts random unique keys and checks
// Get and full iteration against a sorted-map oracle.
func TestTreeMatchesSortedMapProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, err := pagestore.CreateTemp(pagestore.Options{PageSize: 256, PoolPages: 64})
		if err != nil {
			return false
		}
		defer st.Close()
		tr, err := New(st)
		if err != nil {
			return false
		}
		oracle := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("%x", rng.Int63n(1<<30))
			v := fmt.Sprintf("%d", rng.Int63())
			if _, dup := oracle[k]; dup {
				if err := tr.Insert([]byte(k), []byte(v)); !errors.Is(err, ErrDuplicate) {
					return false
				}
				continue
			}
			if err := tr.Insert([]byte(k), []byte(v)); err != nil {
				return false
			}
			oracle[k] = v
		}
		// Exact lookups.
		for k, v := range oracle {
			got, err := tr.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		// Ordered iteration.
		keys := make([]string, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		for it := tr.Seek(nil); it.Valid(); it.Next() {
			if i >= len(keys) || string(it.Key()) != keys[i] || string(it.Value()) != oracle[keys[i]] {
				return false
			}
			i++
		}
		return i == len(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestSeekMatchesOracleProperty checks Seek positioning against a sorted
// slice oracle for random seek keys.
func TestSeekMatchesOracleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, err := pagestore.CreateTemp(pagestore.Options{PageSize: 256, PoolPages: 64})
		if err != nil {
			return false
		}
		defer st.Close()
		tr, err := New(st)
		if err != nil {
			return false
		}
		var keys []string
		seen := map[string]bool{}
		for i := 0; i < 150; i++ {
			k := fmt.Sprintf("%03d", rng.Intn(500))
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			if err := tr.Insert([]byte(k), nil); err != nil {
				return false
			}
		}
		sort.Strings(keys)
		for trial := 0; trial < 30; trial++ {
			probe := fmt.Sprintf("%03d", rng.Intn(520))
			i := sort.SearchStrings(keys, probe)
			it := tr.Seek([]byte(probe))
			if i == len(keys) {
				valid := it.Valid()
				it.Close()
				if valid {
					return false
				}
				continue
			}
			ok := it.Valid() && string(it.Key()) == keys[i]
			it.Close()
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestBinaryKeysWithZeroBytes(t *testing.T) {
	_, tr := testTree(t, 256)
	keys := [][]byte{
		{0x00},
		{0x00, 0x00},
		{0x00, 0x01},
		{0x01},
		{0xff, 0x00},
	}
	for _, k := range keys {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	for it := tr.Seek(nil); it.Valid(); it.Next() {
		got = append(got, append([]byte(nil), it.Key()...))
	}
	if len(got) != len(keys) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(keys))
	}
	for i := range got {
		if !bytes.Equal(got[i], keys[i]) {
			t.Errorf("key %d = %v, want %v", i, got[i], keys[i])
		}
	}
}
