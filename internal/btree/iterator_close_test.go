package btree

import (
	"fmt"
	"testing"
)

// TestIteratorCloseSurfacesReleaseError pins the regression where a
// pin-accounting fault during Close was swallowed: if the iterator's
// page has already been unpinned behind its back, Close must return the
// release error rather than report success (or panic the way
// Store.Unpin would). Scans that fail this way used to look clean and
// only blow up much later, at Truncate or DropCache, far from the
// culprit.
func TestIteratorCloseSurfacesReleaseError(t *testing.T) {
	st, tr := testTree(t, 256)
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := tr.Insert([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	it := tr.Seek(nil)
	if !it.Valid() {
		t.Fatal("iterator not positioned on first cell")
	}
	if it.page == nil {
		t.Fatal("iterator holds no pinned page")
	}
	// Simulate a foreign unpin (double-release bug elsewhere): drop the
	// iterator's pin so its own release must fail.
	if err := st.Release(it.page, false); err != nil {
		t.Fatalf("foreign release: %v", err)
	}

	err := it.Close()
	if err == nil {
		t.Fatal("Close() = nil, want pin-release error")
	}
	// Sticky: Err and repeated Close report the same fault.
	if it.Err() == nil {
		t.Error("Err() = nil after failed Close")
	}
	if again := it.Close(); again == nil {
		t.Error("second Close() = nil, want sticky error")
	}
	if it.Valid() {
		t.Error("iterator still Valid after failed Close")
	}
}

// TestIteratorCloseCleanPath is the happy-path counterpart: a normal
// early Close returns nil and the page can be evicted afterwards.
func TestIteratorCloseCleanPath(t *testing.T) {
	_, tr := testTree(t, 256)
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := tr.Insert([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.Seek([]byte("k03"))
	if !it.Valid() || string(it.Key()) != "k03" {
		t.Fatalf("seek positioned at %q, want k03", it.Key())
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close() = %v, want nil", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("idempotent Close() = %v, want nil", err)
	}
}
