package btree

import (
	"bytes"

	"timber/internal/pagestore"
)

// level is one internal node on the iterator's descent path: the page
// and the ordinal of the child the descent took.
type level struct {
	id  pagestore.PageID
	idx int
}

// Iterator walks leaf cells in ascending key order without decoding
// pages: it holds the current leaf pinned and cursors over the encoded
// cells in place. Obtain one with Tree.Seek, advance with Next, and
// Close it when done (Close is idempotent; an iterator that has run to
// exhaustion is already closed). Key and Value alias the pinned page
// and are valid only until the next Next/Close call — copy them to
// retain. Concurrent inserts invalidate iterators.
//
// Leaf transitions climb a stack of parent positions and descend into
// the next subtree instead of following the leaves' sibling links.
// Under copy-on-write a shadowed leaf's left sibling still carries a
// chain pointer to the superseded page, so the sibling links are not
// trustworthy on any tree that has ever been COW-updated; the parent
// stack only ever re-reads pages on the descent path, which are
// immutable for the snapshot the iterator was opened on.
type Iterator struct {
	t     *Tree
	stack []level
	page  *pagestore.Page
	data  []byte
	num   int // cells in the current leaf
	idx   int // current cell index
	off   int // byte offset of the current cell header
	key   []byte
	val   []byte
	err   error
	done  bool
}

// Seek positions an iterator at the first key >= key. An empty key
// seeks to the start of the tree. The descent and the leaf scan operate
// on encoded pages in place.
func (t *Tree) Seek(key []byte) *Iterator {
	it := &Iterator{t: t}
	id := t.root
	for {
		p, err := t.st.Fetch(id)
		if err != nil {
			it.fail(err)
			return it
		}
		t.m.visit()
		data := p.Data()
		if data[0]&flagLeaf != 0 {
			t.m.leaf()
			it.page = p
			it.data = data
			it.num = int(uint16(data[1]) | uint16(data[2])<<8)
			it.idx = 0
			it.off = nodeOverhead
			it.loadCell()
			// Skip cells below the seek key.
			for !it.done && bytes.Compare(it.key, key) < 0 {
				it.advance()
			}
			return it
		}
		ci, next := internalChildIndex(data, key)
		t.st.Unpin(p, false)
		it.stack = append(it.stack, level{id: id, idx: ci})
		id = next
	}
}

// loadCell parses the cell at the cursor into key/val, or moves to the
// next leaf (or completion) when the current leaf is exhausted. Leaves
// emptied by deletion are skipped.
func (it *Iterator) loadCell() {
	for it.idx >= it.num {
		it.release()
		if it.err != nil || !it.nextLeaf() {
			it.done = true
			return
		}
	}
	klen := int(uint16(it.data[it.off]) | uint16(it.data[it.off+1])<<8)
	vlen := int(uint16(it.data[it.off+2]) | uint16(it.data[it.off+3])<<8)
	body := it.off + 4
	it.key = it.data[body : body+klen]
	it.val = it.data[body+klen : body+klen+vlen]
}

// nextLeaf climbs the parent stack to the nearest ancestor with an
// unvisited child and descends to the leftmost leaf of that subtree.
// It reports false (leaving the iterator unpinned) at the end of the
// tree or on error.
func (it *Iterator) nextLeaf() bool {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		p, err := it.t.st.Fetch(top.id)
		if err != nil {
			it.fail(err)
			return false
		}
		it.t.m.visit()
		data := p.Data()
		if top.idx+1 >= internalNumChildren(data) {
			it.t.st.Unpin(p, false)
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		top.idx++
		id := internalChildAt(data, top.idx)
		it.t.st.Unpin(p, false)
		// Descend along leftmost children to the subtree's first leaf.
		for {
			cp, err := it.t.st.Fetch(id)
			if err != nil {
				it.fail(err)
				return false
			}
			it.t.m.visit()
			cdata := cp.Data()
			if cdata[0]&flagLeaf != 0 {
				it.t.m.leaf()
				it.page = cp
				it.data = cdata
				it.num = int(uint16(cdata[1]) | uint16(cdata[2])<<8)
				it.idx = 0
				it.off = nodeOverhead
				return true
			}
			it.stack = append(it.stack, level{id: id, idx: 0})
			next := internalChildAt(cdata, 0)
			it.t.st.Unpin(cp, false)
			id = next
		}
	}
	return false
}

// advance moves the cursor one cell forward and loads it.
func (it *Iterator) advance() {
	it.off += 4 + len(it.key) + len(it.val)
	it.idx++
	it.loadCell()
}

func (it *Iterator) fail(err error) {
	it.err = err
	it.done = true
	it.release()
}

// release drops the pinned page, folding a pin-accounting fault into
// the iterator's sticky error instead of swallowing it (or panicking
// mid-scan the way Store.Unpin would).
func (it *Iterator) release() {
	if it.page == nil {
		return
	}
	if rerr := it.t.st.Release(it.page, false); rerr != nil && it.err == nil {
		it.err = rerr
	}
	it.page = nil
}

// Valid reports whether the iterator is positioned on a cell.
func (it *Iterator) Valid() bool { return !it.done && it.err == nil }

// Err returns the first error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Key returns the current cell's key, aliasing the pinned page; valid
// until the next Next or Close.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current cell's value, aliasing the pinned page;
// valid until the next Next or Close.
func (it *Iterator) Value() []byte { return it.val }

// Next advances to the following cell.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.advance()
}

// PeekNextKey returns the key of the cell after the current one within
// the same leaf, without moving the iterator and without any page
// fetch. It reports false when the iterator is not on a cell or the
// current cell is the leaf's last — callers that need cross-leaf
// lookahead must fall back to decoding the current cell. The returned
// slice aliases the pinned page and is valid only until the next
// Next/Close.
func (it *Iterator) PeekNextKey() ([]byte, bool) {
	if !it.Valid() || it.idx+1 >= it.num {
		return nil, false
	}
	off := it.off + 4 + len(it.key) + len(it.val)
	klen := int(uint16(it.data[off]) | uint16(it.data[off+1])<<8)
	body := off + 4
	return it.data[body : body+klen], true
}

// SeekForward advances the iterator to the first cell with key >=
// target, never moving backward: a target at or before the current key
// is a no-op. Within the current leaf it steps cell to cell (key
// compares only, no value decoding); when the target lies beyond the
// leaf it re-descends from the root, skipping the intervening leaves
// entirely — the fast-forward posting cursors use to jump over
// non-overlapping regions.
func (it *Iterator) SeekForward(target []byte) {
	if !it.Valid() || bytes.Compare(it.key, target) >= 0 {
		return
	}
	// The leaf's cells are sorted: step while the target is still ahead
	// and cells remain in this leaf.
	for it.idx+1 < it.num {
		it.advance()
		if bytes.Compare(it.key, target) >= 0 {
			return
		}
	}
	// Target beyond the current leaf: a fresh descent skips straight to
	// the owning leaf instead of walking every leaf in between.
	it.release()
	fresh := it.t.Seek(target)
	*it = *fresh
}

// Close releases the iterator's pinned page and returns the iterator's
// first error — a scan fault or a pin-release fault, whichever came
// first. Iterators that ran to exhaustion are already closed; Close is
// safe to call regardless (idempotent), and callers that may stop
// early must call it (typically via defer) and check the error: a
// failed release means the buffer pool's pin accounting is off, which
// a later Truncate or DropCache would otherwise report far from the
// culprit.
func (it *Iterator) Close() error {
	it.release()
	it.done = true
	return it.err
}

// ScanPrefix calls fn for every cell whose key begins with prefix, in
// key order. It stops early (without error) if fn returns false. The
// slices passed to fn alias the page; fn must copy to retain them.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	it := t.Seek(prefix)
	for it.Valid() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Close()
}

// ScanRange calls fn for every cell with lo <= key < hi (hi nil means no
// upper bound), in key order. It stops early if fn returns false. The
// slices passed to fn alias the page; fn must copy to retain them.
func (t *Tree) ScanRange(lo, hi []byte, fn func(key, value []byte) bool) error {
	it := t.Seek(lo)
	for it.Valid() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Close()
}
