package btree

import (
	"bytes"

	"timber/internal/pagestore"
)

// Iterator walks leaf cells in ascending key order without decoding
// pages: it holds the current leaf pinned and cursors over the encoded
// cells in place. Obtain one with Tree.Seek, advance with Next, and
// Close it when done (Close is idempotent; an iterator that has run to
// exhaustion is already closed). Key and Value alias the pinned page
// and are valid only until the next Next/Close call — copy them to
// retain. Concurrent inserts invalidate iterators.
type Iterator struct {
	t    *Tree
	page *pagestore.Page
	data []byte
	num  int // cells in the current leaf
	idx  int // current cell index
	off  int // byte offset of the current cell header
	key  []byte
	val  []byte
	err  error
	done bool
}

// Seek positions an iterator at the first key >= key. An empty key
// seeks to the start of the tree. The descent and the leaf scan operate
// on encoded pages in place.
func (t *Tree) Seek(key []byte) *Iterator {
	it := &Iterator{t: t}
	id := t.root
	for {
		p, err := t.st.Fetch(id)
		if err != nil {
			it.fail(err)
			return it
		}
		t.m.visit()
		data := p.Data()
		if data[0]&flagLeaf != 0 {
			t.m.leaf()
			it.page = p
			it.data = data
			it.num = int(uint16(data[1]) | uint16(data[2])<<8)
			it.idx = 0
			it.off = nodeOverhead
			it.loadCell()
			// Skip cells below the seek key.
			for !it.done && bytes.Compare(it.key, key) < 0 {
				it.advance()
			}
			return it
		}
		next := internalChildEncoded(data, key)
		t.st.Unpin(p, false)
		id = next
	}
}

// loadCell parses the cell at the cursor into key/val, or moves to the
// next leaf (or completion) when the current leaf is exhausted.
func (it *Iterator) loadCell() {
	for it.idx >= it.num {
		// Leaf exhausted: follow the chain.
		next := pagestore.PageID(uint32(it.data[3]) | uint32(it.data[4])<<8 | uint32(it.data[5])<<16 | uint32(it.data[6])<<24)
		it.release()
		if it.err != nil {
			it.done = true
			return
		}
		if next == pagestore.InvalidPage {
			it.done = true
			return
		}
		p, err := it.t.st.Fetch(next)
		if err != nil {
			it.fail(err)
			return
		}
		it.t.m.visit()
		it.t.m.leaf()
		it.page = p
		it.data = p.Data()
		it.num = int(uint16(it.data[1]) | uint16(it.data[2])<<8)
		it.idx = 0
		it.off = nodeOverhead
	}
	klen := int(uint16(it.data[it.off]) | uint16(it.data[it.off+1])<<8)
	vlen := int(uint16(it.data[it.off+2]) | uint16(it.data[it.off+3])<<8)
	body := it.off + 4
	it.key = it.data[body : body+klen]
	it.val = it.data[body+klen : body+klen+vlen]
}

// advance moves the cursor one cell forward and loads it.
func (it *Iterator) advance() {
	it.off += 4 + len(it.key) + len(it.val)
	it.idx++
	it.loadCell()
}

func (it *Iterator) fail(err error) {
	it.err = err
	it.done = true
	it.release()
}

// release drops the pinned page, folding a pin-accounting fault into
// the iterator's sticky error instead of swallowing it (or panicking
// mid-scan the way Store.Unpin would).
func (it *Iterator) release() {
	if it.page == nil {
		return
	}
	if rerr := it.t.st.Release(it.page, false); rerr != nil && it.err == nil {
		it.err = rerr
	}
	it.page = nil
}

// Valid reports whether the iterator is positioned on a cell.
func (it *Iterator) Valid() bool { return !it.done && it.err == nil }

// Err returns the first error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Key returns the current cell's key, aliasing the pinned page; valid
// until the next Next or Close.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current cell's value, aliasing the pinned page;
// valid until the next Next or Close.
func (it *Iterator) Value() []byte { return it.val }

// Next advances to the following cell.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.advance()
}

// Close releases the iterator's pinned page and returns the iterator's
// first error — a scan fault or a pin-release fault, whichever came
// first. Iterators that ran to exhaustion are already closed; Close is
// safe to call regardless (idempotent), and callers that may stop
// early must call it (typically via defer) and check the error: a
// failed release means the buffer pool's pin accounting is off, which
// a later Truncate or DropCache would otherwise report far from the
// culprit.
func (it *Iterator) Close() error {
	it.release()
	it.done = true
	return it.err
}

// ScanPrefix calls fn for every cell whose key begins with prefix, in
// key order. It stops early (without error) if fn returns false. The
// slices passed to fn alias the page; fn must copy to retain them.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	it := t.Seek(prefix)
	for it.Valid() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Close()
}

// ScanRange calls fn for every cell with lo <= key < hi (hi nil means no
// upper bound), in key order. It stops early if fn returns false. The
// slices passed to fn alias the page; fn must copy to retain them.
func (t *Tree) ScanRange(lo, hi []byte, fn func(key, value []byte) bool) error {
	it := t.Seek(lo)
	for it.Valid() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			break
		}
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Close()
}
