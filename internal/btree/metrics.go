package btree

import "sync/atomic"

// Metrics counts index-traversal work across one or more trees, for
// the observability layer: the storage DB attaches a single Metrics to
// its locator, tag and value trees, and the tracer snapshots it at
// span boundaries. Counters are atomic, so concurrent readers update
// them without coordination; a tree with no Metrics attached (m == nil)
// pays only a nil-check.
type Metrics struct {
	nodeVisits atomic.Uint64
	leafScans  atomic.Uint64
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	// NodeVisits is the number of tree pages examined: every page a
	// point lookup, descent or scan touched.
	NodeVisits uint64
	// LeafScans is the number of leaf pages cursored by iterators
	// (range and prefix scans); descents that terminate at a leaf count
	// it here too.
	LeafScans uint64
}

// Snapshot returns the current counter values. Safe on a nil Metrics
// (all zeros).
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		NodeVisits: m.nodeVisits.Load(),
		LeafScans:  m.leafScans.Load(),
	}
}

// Reset zeroes the counters. Safe on a nil Metrics.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.nodeVisits.Store(0)
	m.leafScans.Store(0)
}

func (m *Metrics) visit() {
	if m != nil {
		m.nodeVisits.Add(1)
	}
}

func (m *Metrics) leaf() {
	if m != nil {
		m.leafScans.Add(1)
	}
}

// SetMetrics attaches a counter sink to the tree; nil detaches. Several
// trees may share one Metrics. Attach before concurrent use begins.
func (t *Tree) SetMetrics(m *Metrics) { t.m = m }
