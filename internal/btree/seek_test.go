package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// seekTestKeys loads n sequential keys into a small-page tree (forcing
// a multi-leaf shape) and returns them in sorted order.
func seekTestKeys(t *testing.T, tr *Tree, n int) [][]byte {
	t.Helper()
	keys := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		if err := tr.Insert(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	return keys
}

// TestIteratorPeekNextKey: within a leaf the peek matches what Next
// lands on, and the final cell of the tree peeks false.
func TestIteratorPeekNextKey(t *testing.T) {
	_, tr := testTree(t, 256)
	keys := seekTestKeys(t, tr, 200)
	it := tr.Seek(nil)
	defer it.Close()
	seen := 0
	for it.Valid() {
		peek, ok := it.PeekNextKey()
		var peeked []byte
		if ok {
			peeked = append([]byte(nil), peek...)
		}
		it.Next()
		if it.Valid() && ok && !bytes.Equal(peeked, it.Key()) {
			t.Fatalf("peek %q but Next landed on %q", peeked, it.Key())
		}
		if !it.Valid() && ok {
			t.Fatalf("peeked %q past the end of the tree", peeked)
		}
		seen++
	}
	if seen != len(keys) {
		t.Fatalf("iterated %d cells, want %d", seen, len(keys))
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIteratorSeekForward: forward seeks land on the first key >=
// target from arbitrary positions (including cross-leaf jumps), never
// move backward, and run out cleanly past the last key.
func TestIteratorSeekForward(t *testing.T) {
	_, tr := testTree(t, 256)
	keys := seekTestKeys(t, tr, 500)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		start := rng.Intn(len(keys))
		it := tr.Seek(keys[start])
		pos := start
		for hop := 0; hop < 5 && it.Valid(); hop++ {
			targetIdx := pos + rng.Intn(len(keys)-pos)
			// Alternate exact keys and between-key targets.
			target := append([]byte(nil), keys[targetIdx]...)
			if hop%2 == 1 {
				target = append(target[:len(target)-1], target[len(target)-1]-1, 0xff)
			}
			it.SeekForward(target)
			if !it.Valid() {
				t.Fatalf("trial %d: iterator died seeking %q", trial, target)
			}
			if !bytes.Equal(it.Key(), keys[targetIdx]) {
				t.Fatalf("trial %d: SeekForward(%q) landed on %q, want %q",
					trial, target, it.Key(), keys[targetIdx])
			}
			pos = targetIdx
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Backward targets are no-ops.
	it := tr.Seek(keys[100])
	it.SeekForward(keys[3])
	if !bytes.Equal(it.Key(), keys[100]) {
		t.Fatalf("backward SeekForward moved the iterator to %q", it.Key())
	}
	// Seeking past the last key exhausts the iterator without error.
	it.SeekForward([]byte("zzz"))
	if it.Valid() {
		t.Fatalf("SeekForward past the end left iterator on %q", it.Key())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}
