package btree

import (
	"bytes"
	"fmt"

	"timber/internal/pagestore"
)

// KV is one key/value pair for bulk loading.
type KV struct {
	Key   []byte
	Value []byte
}

// BulkLoad builds a tree bottom-up from key-sorted, duplicate-free
// pairs: leaves are filled left to right to a fill factor, then each
// internal level is built over the one below. This is how the index
// manager constructs indices at document-load time — orders of
// magnitude cheaper than per-key root-to-leaf inserts, which remain
// available for incremental additions afterwards.
func BulkLoad(st *pagestore.Store, kvs []KV) (*Tree, error) {
	t := &Tree{st: st}
	for i, kv := range kvs {
		if len(kv.Key) == 0 {
			return nil, fmt.Errorf("btree: bulk load: empty key at %d", i)
		}
		if i > 0 && bytes.Compare(kvs[i-1].Key, kv.Key) >= 0 {
			return nil, fmt.Errorf("btree: bulk load: keys not strictly increasing at %d (%q >= %q)", i, kvs[i-1].Key, kv.Key)
		}
		if len(kv.Key)+len(kv.Value) > t.MaxCell() {
			return nil, fmt.Errorf("btree: bulk load: cell %d of %d bytes exceeds max %d", i, len(kv.Key)+len(kv.Value), t.MaxCell())
		}
	}
	// Leave headroom so post-load inserts do not split immediately.
	capacity := (st.PageSize() - nodeOverhead) * 9 / 10

	// Build the leaf level.
	type built struct {
		id  pagestore.PageID
		sep []byte // first key of the node
	}
	var leaves []built
	var cur *node
	var curSize int
	flush := func() error {
		if cur == nil {
			return nil
		}
		id, err := t.allocNode(cur)
		if err != nil {
			return err
		}
		leaves = append(leaves, built{id: id, sep: cur.cells[0].key})
		cur = nil
		return nil
	}
	for _, kv := range kvs {
		cellSize := 4 + len(kv.Key) + len(kv.Value)
		if cur != nil && curSize+cellSize > capacity {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		if cur == nil {
			cur = &node{leaf: true, next: pagestore.InvalidPage}
			curSize = nodeOverhead
		}
		cur.cells = append(cur.cells, cell{
			key:   append([]byte(nil), kv.Key...),
			value: append([]byte(nil), kv.Value...),
		})
		curSize += cellSize
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(leaves) == 0 {
		// Empty tree: a lone empty leaf.
		id, err := t.allocNode(&node{leaf: true, next: pagestore.InvalidPage})
		if err != nil {
			return nil, err
		}
		t.root = id
		return t, nil
	}
	// Chain the leaves.
	for i := 0; i+1 < len(leaves); i++ {
		if err := t.setNext(leaves[i].id, leaves[i+1].id); err != nil {
			return nil, err
		}
	}

	// Build internal levels until one node remains.
	level := leaves
	for len(level) > 1 {
		var up []built
		var in *node
		var inSize int
		flushInternal := func() error {
			if in == nil {
				return nil
			}
			id, err := t.allocNode(in)
			if err != nil {
				return err
			}
			up = append(up, built{id: id, sep: in.firstSep})
			in = nil
			return nil
		}
		for _, child := range level {
			cellSize := 6 + len(child.sep)
			if in != nil && inSize+cellSize > capacity {
				if err := flushInternal(); err != nil {
					return nil, err
				}
			}
			if in == nil {
				in = &node{left: child.id, firstSep: child.sep}
				inSize = nodeOverhead
				continue // leftmost child carries no separator
			}
			in.cells = append(in.cells, cell{key: child.sep, child: child.id})
			inSize += cellSize
		}
		if err := flushInternal(); err != nil {
			return nil, err
		}
		level = up
	}
	t.root = level[0].id
	return t, nil
}

// setNext updates a leaf's next pointer in place.
func (t *Tree) setNext(id, next pagestore.PageID) error {
	p, err := t.st.Fetch(id)
	if err != nil {
		return err
	}
	n, err := decode(p.Data())
	if err != nil {
		t.st.Unpin(p, false)
		return err
	}
	n.next = next
	n.encode(p.Data())
	t.st.Unpin(p, true)
	return nil
}
