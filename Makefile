GO ?= go

.PHONY: all build test vet race check bench experiments fuzz-smoke trace-check serve-check metrics-check serve-bench stream-check bench-check wal-check plan-check events-check events-bench twig-check twig-bench calibrate

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: static analysis plus the whole suite under
# the race detector (the plain suite is a subset of the race run).
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

experiments:
	$(GO) run ./cmd/experiments -parfile BENCH_parallel.json

# fuzz-smoke runs each native fuzz target briefly — enough to catch
# parser panics on the corpus plus a short random exploration. The
# storage and exec targets cover the compressed on-disk codecs
# (posting blocks, compact records, LZ pages, spill rows).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/xq/
	$(GO) test -run '^$$' -fuzz '^FuzzParseTree$$' -fuzztime 5s ./internal/pattern/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/xmltree/
	$(GO) test -run '^$$' -fuzz '^FuzzPostingBlock$$' -fuzztime 5s ./internal/storage/
	$(GO) test -run '^$$' -fuzz '^FuzzRecordCompact$$' -fuzztime 5s ./internal/storage/
	$(GO) test -run '^$$' -fuzz '^FuzzSpillRow$$' -fuzztime 5s ./internal/exec/
	$(GO) test -run '^$$' -fuzz '^FuzzLZDecompress$$' -fuzztime 5s ./internal/pagestore/
	$(GO) test -run '^$$' -fuzz '^FuzzTwigMatch$$' -fuzztime 5s ./internal/match/

# serve-check gates the service layer: timber-serve must build, and
# the engine + HTTP suites (concurrent-client hammer, plan cache,
# cancellation, backpressure) must pass under the race detector.
serve-check:
	$(GO) build ./cmd/timber-serve
	$(GO) test -race ./internal/engine/ ./cmd/timber-serve/

# trace-check runs one traced query end to end; timber-query verifies
# the exactness invariant (span deltas ≡ global counters) and exits
# nonzero on any mismatch.
trace-check:
	$(GO) run ./cmd/dblpgen -articles 2000 -db /tmp/timber-trace-check.db
	$(GO) run ./cmd/timber-query -db /tmp/timber-trace-check.db -plans=false -q -trace \
		'FOR $$a IN distinct-values(document("bib.xml")//author) RETURN <authorpubs>{$$a}{FOR $$b IN document("bib.xml")//article WHERE $$a = $$b/author RETURN $$b/title}</authorpubs>'
	rm -f /tmp/timber-trace-check.db

# metrics-check gates the telemetry pipeline end to end: start a real
# timber-serve over a generated database, run a query, scrape /metrics,
# and validate the Prometheus exposition with the built-in linter
# (cmd/metricslint, no external tooling). Fails on any format violation
# or when the exposition lacks a counter, a gauge or a labeled
# histogram.
metrics-check:
	$(GO) run ./cmd/dblpgen -articles 500 -db /tmp/timber-metrics-check.db
	$(GO) build -o /tmp/timber-serve-metrics-check ./cmd/timber-serve
	$(GO) run ./cmd/metricslint -serve /tmp/timber-serve-metrics-check -db /tmp/timber-metrics-check.db
	rm -f /tmp/timber-metrics-check.db /tmp/timber-serve-metrics-check

# stream-check gates the streaming executor: every corpus query must
# produce byte-identical trees and stats to the materializing
# reference (groupby-mat), at parallelism 1 and 4 and across batch
# sizes, under the race detector — plus the spill-equivalence and
# materialize-budget suites and the facade-level equivalence.
stream-check:
	$(GO) test -race -run 'Streaming|Materialize|GroupByMat|FacadeStreaming|FacadeMaterialize' \
		./internal/exec/ ./internal/engine/

# bench-check gates the compressed storage formats: a short full-scale
# ladder run (compressed vs uncompressed database at a small article
# count) that fails unless query results are byte-identical across
# formats and the index bytes-on-disk shrank by at least 30% — the
# acceptance floor the full BENCH_fullscale.json run must also clear.
bench-check:
	$(GO) run ./cmd/experiments -exp none -fullfile /tmp/timber-bench-check.json \
		-fullarticles 4000 -assertreduction 30
	rm -f /tmp/timber-bench-check.json

# wal-check gates the durable write path: the crash-recovery harness
# (torn writes and drop-unsynced power cuts at sampled WAL offsets,
# write-fault aborts, recovery idempotence), the WAL and crashfs unit
# suites, and the concurrent ingest-vs-query byte-identity and spool
# cancellation hammers — all under the race detector.
wal-check:
	$(GO) test -race ./internal/wal/ ./internal/crashfs/
	$(GO) test -race -run 'Crash|Ingest|Spool|Snapshot' \
		./internal/storage/ ./internal/exec/ ./cmd/timber-serve/

# plan-check gates the cost-based planner: the planner-pick regression
# (auto must never run slower than 1.5x the best strategy on the bench
# fixture), the statistics round-trip and incremental-maintenance
# suites, the auto/explicit byte-identity checks, and the EXPLAIN
# estimate-vs-actual join — all under the race detector.
plan-check:
	$(GO) test -race ./internal/opt/planner/ ./internal/stats/
	$(GO) test -race -run 'Planner|CardStats|Auto|Explain|ParseStrategy' \
		./internal/storage/ ./internal/exec/ ./internal/engine/

# events-check gates the event journal and flight recorder: the schema
# lint (every emitted event type registered, documented, and present in
# DESIGN.md §7.3), the lock-free ring and full-stack /debug/events
# hammers, the journal-on ≡ journal-off byte-identity suite, and the
# /debug endpoint contract (filters, slow-query correlation, pprof
# gated behind -debug) — all under the race detector.
events-check:
	$(GO) run ./cmd/eventslint -root . -design DESIGN.md
	$(GO) test -race -run 'Journal|Event|Flight|Debug|Pprof|SlowQuery|Anomal|Dump' \
		./internal/obs/ ./internal/engine/ ./cmd/timber-serve/

# twig-check gates the holistic twig-join matcher: the twig ≡ binary
# equivalence property (random documents and patterns, parallelism 1
# and 4), the concurrent both-matchers hammer, the matcher cost model,
# the engine-level byte-identity and EXPLAIN matcher reporting, and
# the matcher-pick regression (the planner's pick must never run
# slower than 1.5x the best explicit matcher) — all under the race
# detector — plus a short matcher comparison that fails unless the
# twig matcher strictly wins postings scanned and intermediate
# bindings on the deep chain.
twig-check:
	$(GO) test -race -run 'Twig|Matcher' \
		./internal/match/ ./internal/opt/planner/ ./internal/engine/ \
		./internal/bench/ ./cmd/timber-serve/
	$(GO) run ./cmd/experiments -exp none -twigfile /tmp/timber-twig-check.json \
		-twigdocs 12 -twigarticles 80 -twigreps 1
	rm -f /tmp/timber-twig-check.json

# twig-bench writes the full-size matcher comparison (binary cascade
# vs holistic twig join: postings scanned, intermediate bindings, wall
# time on chain and branch patterns) to BENCH_twig.json.
twig-bench:
	$(GO) run ./cmd/experiments -exp none -twigfile BENCH_twig.json

# calibrate summarizes the planner's estimation accuracy from
# self-generated plan_estimate events (pass a journal dump to
# cmd/experiments -calibrate to read operator data instead).
calibrate:
	$(GO) run ./cmd/experiments -exp none -calibrate self

# events-bench measures the journal's query-path overhead (E1 wall
# time with the journal off vs on) and writes BENCH_events.json; the
# delta must stay within run-to-run noise.
events-bench:
	$(GO) run ./cmd/experiments -exp none -eventsfile BENCH_events.json

# serve-bench hammers an in-process timber-serve with concurrent
# clients and writes the server-side latency quantiles (read from the
# http_request_seconds histogram) to BENCH_serve.json.
serve-bench:
	$(GO) run ./cmd/dblpgen -articles 2000 -db /tmp/timber-serve-bench.db
	$(GO) run ./cmd/timber-serve -db /tmp/timber-serve-bench.db \
		-hammer 200 -hammerclients 8 -hammerfile BENCH_serve.json
	rm -f /tmp/timber-serve-bench.db
