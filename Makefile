GO ?= go

.PHONY: all build test vet race check bench experiments fuzz-smoke trace-check serve-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: static analysis plus the whole suite under
# the race detector (the plain suite is a subset of the race run).
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

experiments:
	$(GO) run ./cmd/experiments -parfile BENCH_parallel.json

# fuzz-smoke runs each native fuzz target briefly — enough to catch
# parser panics on the corpus plus a short random exploration.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/xq/
	$(GO) test -run '^$$' -fuzz '^FuzzParseTree$$' -fuzztime 5s ./internal/pattern/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/xmltree/

# serve-check gates the service layer: timber-serve must build, and
# the engine + HTTP suites (concurrent-client hammer, plan cache,
# cancellation, backpressure) must pass under the race detector.
serve-check:
	$(GO) build ./cmd/timber-serve
	$(GO) test -race ./internal/engine/ ./cmd/timber-serve/

# trace-check runs one traced query end to end; timber-query verifies
# the exactness invariant (span deltas ≡ global counters) and exits
# nonzero on any mismatch.
trace-check:
	$(GO) run ./cmd/dblpgen -articles 2000 -db /tmp/timber-trace-check.db
	$(GO) run ./cmd/timber-query -db /tmp/timber-trace-check.db -plans=false -q -trace \
		'FOR $$a IN distinct-values(document("bib.xml")//author) RETURN <authorpubs>{$$a}{FOR $$b IN document("bib.xml")//article WHERE $$a = $$b/author RETURN $$b/title}</authorpubs>'
	rm -f /tmp/timber-trace-check.db
