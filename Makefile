GO ?= go

.PHONY: all build test vet race check bench experiments

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: static analysis plus the whole suite under
# the race detector (the plain suite is a subset of the race run).
check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

experiments:
	$(GO) run ./cmd/experiments -parfile BENCH_parallel.json
