// Command timber-load creates a timber database file and loads XML
// documents into it.
//
// Usage:
//
//	timber-load -db bib.timber doc1.xml [doc2.xml ...]
//
// The first document bulk-loads the indices; later documents insert
// incrementally.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"timber/internal/storage"
)

func main() {
	dbPath := flag.String("db", "timber.db", "database file to create")
	pageSize := flag.Int("pagesize", 8192, "page size in bytes")
	poolMB := flag.Int("poolmb", 32, "buffer pool size in MiB")
	noValueIdx := flag.Bool("novalueindex", false, "skip the (tag, content) value index")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "timber-load: no input documents")
		flag.Usage()
		os.Exit(2)
	}
	// run owns the database lifecycle; os.Exit only happens after its
	// deferred Close (which persists metadata and dirty pages) has run
	// and its error has been folded into run's result.
	if err := run(*dbPath, *pageSize, *poolMB, *noValueIdx, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "timber-load:", err)
		os.Exit(1)
	}
}

func run(dbPath string, pageSize, poolMB int, noValueIdx bool, inputs []string) (err error) {
	db, err := storage.Create(dbPath, storage.Options{
		PageSize:     pageSize,
		PoolPages:    poolMB * 1024 * 1024 / pageSize,
		NoValueIndex: noValueIdx,
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		start := time.Now()
		doc, err := db.LoadXML(filepath.Base(path), f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		info := db.Documents()[doc-1]
		fmt.Printf("loaded %s as document %d: %d nodes in %v\n",
			path, doc, info.NodeCount, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("database %s: %d pages of %d bytes\n", dbPath, db.NumPages(), pageSize)
	return nil
}
