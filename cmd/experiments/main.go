// Command experiments regenerates the paper's Section 6 evaluation:
// the group-by-author query (E1, titles) and its count variant (E2)
// executed with the direct plans and the GROUPBY plans over a
// synthetic DBLP-Journals database.
//
// Usage:
//
//	experiments [-articles N] [-poolmb M] [-exp e1|e2|all|none] [-seed S] [-v]
//
// The defaults run a laptop-scale database (40,000 articles ≈ 420k
// nodes) with the paper's 32 MB buffer pool and 8 KB pages. Pass
// -articles 440000 to approximate the paper's 4.6M-node dataset.
//
// -fullfile runs the full-scale compression ladder instead of (or in
// addition to) the strategy experiments: each -fullarticles scale is
// built twice — compact+compressed default vs -Uncompressed — and the
// bytes-on-disk, posting-decode and GROUPBY timings land in the named
// JSON report (e.g. BENCH_fullscale.json). -exp none skips the
// strategy tables, so the ladder runs alone. -assertreduction makes
// the run fail unless the index shrank by the given percentage.
//
// -eventsfile measures the event-journal overhead: the same database
// is built with the journal off and on, E1 runs -eventsreps times on
// each through the full engine path, and the wall-time medians, delta
// and result-hash equality land in the named JSON report (e.g.
// BENCH_events.json).
//
// -twigfile compares the binary structural-join cascade against the
// holistic twig-join matcher on chain and branch patterns over a
// corpus where most documents cannot satisfy the deep chain: postings
// scanned, intermediate bindings and wall time per matcher land in the
// named JSON report (e.g. BENCH_twig.json), and the run fails unless
// the twig matcher wins both access counters on the deep chain.
//
// -calibrate summarizes the planner's estimation accuracy from
// plan_estimate journal events: pass a journal dump (a crash dump or
// /debug/events capture) to read operator data, or "self" to build a
// synthetic database and generate the events in-process. Per-quantity
// relative-error summaries and suggested cost-constant scales print as
// a table; -calibratefile also writes them as JSON.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"timber/internal/bench"
	"timber/internal/dblpgen"
	"timber/internal/pagestore"
)

func main() {
	articles := flag.Int("articles", 40_000, "number of synthetic DBLP articles (440000 ≈ the paper's 4.6M nodes)")
	poolMB := flag.Int("poolmb", 32, "buffer pool size in MiB (paper: 32)")
	expSel := flag.String("exp", "all", "which experiment to run: e1 (titles), e2 (count), all, none")
	seed := flag.Int64("seed", 2002, "generator seed")
	parFile := flag.String("parfile", "", "also sweep E1 groupby over parallelism 1,2,4,8 and write the JSON scaling report here (e.g. BENCH_parallel.json)")
	traceFile := flag.String("tracefile", "", "run each strategy under a verified per-operator tracer and write the JSON trace report here (e.g. BENCH_traces.json)")
	streamFile := flag.String("streamfile", "", "compare the streaming iterator executor against the materializing plans (pool fetches + peak heap) and write the JSON report here (e.g. BENCH_streaming.json)")
	fullFile := flag.String("fullfile", "", "run the full-scale compression ladder (compressed vs uncompressed database per scale) and write the JSON report here (e.g. BENCH_fullscale.json)")
	fullArticles := flag.String("fullarticles", "44000,440000", "comma-separated article counts for the -fullfile ladder")
	full10x := flag.Bool("full10x", false, "append the 10x-paper scale (4.4M articles; needs several GB) to the -fullfile ladder")
	assertReduction := flag.Float64("assertreduction", 0, "fail unless the -fullfile ladder's index bytes-on-disk reduction meets this percentage at every scale (0 = no check)")
	eventsFile := flag.String("eventsfile", "", "measure the event-journal overhead (E1 wall time with the journal off vs on) and write the JSON report here (e.g. BENCH_events.json)")
	eventsReps := flag.Int("eventsreps", 5, "timed repetitions per variant in the -eventsfile run")
	twigFile := flag.String("twigfile", "", "compare the binary and holistic twig matchers on chain/branch patterns and write the JSON report here (e.g. BENCH_twig.json)")
	twigDocs := flag.Int("twigdocs", 16, "documents in the -twigfile corpus (the deep chain appears in one of eight)")
	twigArticles := flag.Int("twigarticles", 200, "articles per document in the -twigfile corpus")
	twigReps := flag.Int("twigreps", 3, "timed repetitions per matcher in the -twigfile run")
	calibrate := flag.String("calibrate", "", "summarize planner estimation accuracy from plan_estimate events: a journal-dump path, or 'self' to generate events in-process")
	calibrateFile := flag.String("calibratefile", "", "also write the -calibrate report as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	verbose := flag.Bool("v", false, "print loading progress")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
			}
		}()
	}
	scales, err := parseScales(*fullArticles, *full10x)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if *expSel != "none" || *parFile != "" || *traceFile != "" || *streamFile != "" {
		// run owns the database lifecycle; the deferred Close runs (and
		// its error propagates) before any exit here.
		if err := run(*articles, *poolMB, *expSel, *seed, *parFile, *traceFile, *streamFile, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *fullFile != "" {
		if err := runFullScale(scales, *poolMB, *seed, *fullFile, *assertReduction); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *eventsFile != "" {
		if err := runEventsOverhead(*articles, *eventsReps, *poolMB, *seed, *eventsFile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *twigFile != "" {
		if err := runTwigComparison(*twigDocs, *twigArticles, *twigReps, *poolMB, *seed, *twigFile); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *calibrate != "" {
		if err := runCalibration(*calibrate, *calibrateFile, *articles, *poolMB, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// runTwigComparison measures both matchers on the chain/branch
// patterns, writes the report, and enforces the deep-chain win.
func runTwigComparison(docs, articlesPerDoc, reps, poolMB int, seed int64, path string) error {
	fmt.Println("pattern matchers (binary cascade vs holistic twig join):")
	rep, err := bench.RunTwigComparison(docs, articlesPerDoc, reps, poolMB, seed, func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(path); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	if err := rep.AssertTwigWins(); err != nil {
		return err
	}
	fmt.Println("deep chain: twig wins postings scanned and intermediate bindings: ok")
	return nil
}

// runCalibration summarizes planner estimation accuracy from a journal
// dump (or a self-generated one) and prints the per-quantity table.
func runCalibration(source, jsonPath string, articles, poolMB int, seed int64) error {
	var rep *bench.CalibrationReport
	var err error
	if source == "self" {
		fmt.Println("planner calibration (self-generated plan_estimate events):")
		rep, err = bench.RunSelfCalibration(articles, poolMB, seed, func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		})
	} else {
		fmt.Printf("planner calibration (journal dump %s):\n", source)
		rep, err = bench.ReadCalibrationFile(source)
	}
	if err != nil {
		return err
	}
	fmt.Printf("  %d plan_estimate events over %d journal lines\n", rep.Events, rep.Lines)
	fmt.Print(bench.CalibrationTable(rep))
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	return nil
}

// runEventsOverhead measures the journal-on vs journal-off E1 delta
// and writes its report.
func runEventsOverhead(articles, reps, poolMB int, seed int64, path string) error {
	fmt.Println("event-journal overhead (E1, journal off vs on):")
	rep, err := bench.RunEventsOverhead(articles, reps, poolMB, seed, func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(path); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// parseScales resolves the -fullarticles list, appending the 10x scale
// when requested.
func parseScales(list string, with10x bool) ([]int, error) {
	var scales []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -fullarticles entry %q", f)
		}
		scales = append(scales, n)
	}
	if with10x {
		scales = append(scales, dblpgen.FullPaperScale10x().Articles)
	}
	return scales, nil
}

// runFullScale runs the compression ladder and writes its report.
func runFullScale(scales []int, poolMB int, seed int64, path string, assertReduction float64) error {
	fmt.Println("full-scale compression ladder (compressed vs uncompressed):")
	rep, err := bench.RunFullScale(scales, poolMB, seed, func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	fmt.Print(bench.FullScaleTable(rep))
	if err := rep.WriteJSON(path); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	if assertReduction > 0 {
		if err := rep.AssertIndexReduction(assertReduction); err != nil {
			return err
		}
		fmt.Printf("index reduction floor %.0f%%: ok\n", assertReduction)
	}
	return nil
}

func run(articles, poolMB int, expSel string, seed int64, parFile, traceFile, streamFile string, verbose bool) (err error) {
	poolPages := poolMB * 1024 * 1024 / pagestore.DefaultPageSize
	db, err := bench.SetupDB(poolPages)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	start := time.Now()
	stats, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: articles, Seed: seed})
	if err != nil {
		return err
	}
	if verbose {
		fmt.Printf("loaded %v in %v (%d pages of %d KiB; pool %d MiB)\n\n",
			stats, time.Since(start).Round(time.Millisecond),
			dbPages(db), pagestore.DefaultPageSize/1024, poolMB)
	} else {
		fmt.Printf("database: %v; pool %d MiB\n\n", stats, poolMB)
	}

	experiments := []struct {
		id, title, text, headline string
	}{
		{"e1", "E1 — Sec. 6 titles query (paper: direct 323.966s vs groupby 178.607s, 1.81x)",
			bench.Query1Text,
			"paper band: groupby wins by ~1.5–2x when titles are materialized"},
		{"e2", "E2 — Sec. 6 count query (paper: direct 155.564s vs groupby 23.033s, 6.75x)",
			bench.QueryCountText,
			"paper band: groupby wins by several-fold when only counts are produced"},
	}
	var traces bench.TraceReport
	traces.Articles = articles
	for _, e := range experiments {
		if expSel != "all" && expSel != e.id {
			continue
		}
		fmt.Println(e.title)
		q, err := bench.BuildQuery(e.text)
		if err != nil {
			return err
		}
		var ms []bench.Measurement
		if traceFile != "" {
			// Traced runs: every strategy executes under a tracer whose
			// span deltas are verified against the global counters, and
			// the paper's two measured plans get their per-operator
			// breakdown inlined into the BENCH output.
			ms, err = bench.RunExperimentTraced(db, q)
		} else {
			ms, err = bench.RunExperiment(db, q)
		}
		if err != nil {
			return err
		}
		fmt.Print(bench.Table(ms, bench.StratDirectNaive))
		if traceFile != "" {
			traces.AddMeasurements(e.id, ms)
			for _, m := range ms {
				if m.Name != bench.StratDirectNaive && m.Name != bench.StratGroupBy {
					continue
				}
				fmt.Printf("per-operator breakdown — %s:\n", m.Name)
				fmt.Print(m.Trace.Text())
			}
		}
		fmt.Println(e.headline)
		fmt.Println()
	}
	if traceFile != "" {
		if err := traces.WriteJSON(traceFile); err != nil {
			return err
		}
		fmt.Println("wrote", traceFile)
	}

	if parFile != "" {
		q, err := bench.BuildQuery(bench.Query1Text)
		if err != nil {
			return err
		}
		rep, err := bench.RunParallelScaling(db, q, []int{1, 2, 4, 8}, 3)
		if err != nil {
			return err
		}
		rep.Articles = articles
		if err := rep.WriteJSON(parFile); err != nil {
			return err
		}
		fmt.Printf("parallel scaling (E1 groupby titles, best of %d):\n", rep.Reps)
		for _, pt := range rep.Points {
			fmt.Printf("  p=%d  %10v  %.2fx  (%d fetches)\n",
				pt.Parallelism, time.Duration(pt.WallNS).Round(time.Microsecond), pt.Speedup, pt.Fetches)
		}
		if rep.Note != "" {
			fmt.Println("  note:", rep.Note)
		}
		fmt.Println("wrote", parFile)
	}

	if streamFile != "" {
		rep, err := bench.RunStreamExperiment(db, articles, poolMB*1024*1024/pagestore.DefaultPageSize)
		if err != nil {
			return err
		}
		if err := rep.WriteJSONFile(streamFile); err != nil {
			return err
		}
		fmt.Println("streaming executor vs materializing plans:")
		fmt.Print(bench.StreamTable(rep))
		fmt.Println("wrote", streamFile)
	}
	return nil
}

// dbPages reports the database size in pages via the pool counters'
// allocation count (every page is allocated exactly once).
func dbPages(db interface{ Stats() pagestore.Stats }) uint64 {
	return db.Stats().Allocations
}
