// Command eventslint is the event-schema gate behind `make
// events-check`: it cross-checks the journal's event registry
// (internal/obs.EventTypes) against the tree's actual emission sites
// and the documentation. It fails when
//
//   - an emission site references an event constant that is not
//     registered (the /debug/events filter and schema view would not
//     know it),
//   - a registered type is never emitted anywhere (dead schema),
//   - a registered type carries no documentation line, or
//   - a registered wire name does not appear in DESIGN.md (the event
//     taxonomy section must stay complete).
//
// Emission sites are found textually: every `obs.EvXxx` reference in a
// non-test Go file counts. The registry itself lives in internal/obs,
// which references its constants unqualified, so the scan naturally
// excludes it.
//
// Usage:
//
//	eventslint -root . -design DESIGN.md
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"timber/internal/obs"
)

var emitRE = regexp.MustCompile(`\bobs\.(Ev[A-Z][A-Za-z0-9]*)\b`)

func main() {
	root := flag.String("root", ".", "repository root to scan for emission sites")
	design := flag.String("design", "DESIGN.md", "design document the wire names must appear in")
	flag.Parse()
	if err := run(*root, *design); err != nil {
		fmt.Fprintln(os.Stderr, "eventslint:", err)
		os.Exit(1)
	}
}

func run(root, design string) error {
	emitted, err := scanEmissions(root)
	if err != nil {
		return err
	}
	designText, err := os.ReadFile(design)
	if err != nil {
		return fmt.Errorf("read %s: %w", design, err)
	}

	registry := obs.EventTypes()
	known := map[string]bool{"EvNone": true} // the zero value is never emitted
	for _, info := range registry {
		known[info.ConstName] = true
	}

	var errs []string
	for constName, sites := range emitted {
		if !known[constName] {
			errs = append(errs, fmt.Sprintf("obs.%s is emitted (%s) but not registered in internal/obs eventInfos",
				constName, strings.Join(sites, ", ")))
		}
	}
	for _, info := range registry {
		if len(emitted[info.ConstName]) == 0 {
			errs = append(errs, fmt.Sprintf("obs.%s (%q) is registered but never emitted", info.ConstName, info.Name))
		}
		if strings.TrimSpace(info.Doc) == "" {
			errs = append(errs, fmt.Sprintf("obs.%s (%q) has no documentation line", info.ConstName, info.Name))
		}
		if !strings.Contains(string(designText), info.Name) {
			errs = append(errs, fmt.Sprintf("event %q is not documented in %s", info.Name, design))
		}
	}
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "eventslint:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d schema violations", len(errs))
	}
	fmt.Printf("eventslint: OK — %d event types registered, emitted and documented\n", len(registry))
	return nil
}

// stripLineComments drops everything from `//` to end of line so
// placeholder names in documentation (e.g. "obs.EvXxx") don't count as
// emission sites. Good enough for a gate: `//` inside a string literal
// would only hide that line, never invent a site.
func stripLineComments(src string) string {
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		if idx := strings.Index(line, "//"); idx >= 0 {
			lines[i] = line[:idx]
		}
	}
	return strings.Join(lines, "\n")
}

// scanEmissions maps event constant names to the files that reference
// them, over every non-test Go file under root.
func scanEmissions(root string) (map[string][]string, error) {
	emitted := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		for _, m := range emitRE.FindAllStringSubmatch(stripLineComments(string(data)), -1) {
			sites := emitted[m[1]]
			if len(sites) == 0 || sites[len(sites)-1] != rel {
				emitted[m[1]] = append(sites, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return emitted, nil
}
