// Command dblpgen emits a synthetic DBLP-Journals document as XML, or
// loads it directly into a timber database file.
//
// Usage:
//
//	dblpgen -articles 10000 > journals.xml
//	dblpgen -articles 10000 -db journals.timber
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"timber/internal/dblpgen"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

func main() {
	articles := flag.Int("articles", 10_000, "number of articles")
	seed := flag.Int64("seed", 2002, "generator seed")
	institutions := flag.Bool("institutions", false, "nest institution elements inside authors")
	dbPath := flag.String("db", "", "load into a timber database file instead of writing XML to stdout")
	flag.Parse()

	cfg := dblpgen.Config{Articles: *articles, Seed: *seed, WithInstitutions: *institutions}
	if err := run(cfg, *dbPath); err != nil {
		fmt.Fprintln(os.Stderr, "dblpgen:", err)
		os.Exit(1)
	}
}

func run(cfg dblpgen.Config, dbPath string) (err error) {
	if dbPath != "" {
		db, err := storage.Create(dbPath, storage.Options{})
		if err != nil {
			return err
		}
		stats, gerr := dblpgen.GenerateToDB(db, cfg)
		// Close even on generation failure, and never let a failed
		// Close (lost metadata or dirty pages) report success.
		cerr := db.Close()
		if gerr != nil {
			return gerr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(os.Stderr, "loaded %v into %s\n", stats, dbPath)
		return nil
	}
	root, stats := dblpgen.Generate(cfg)
	w := bufio.NewWriter(os.Stdout)
	if err := xmltree.Serialize(w, root); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %v\n", stats)
	return nil
}
