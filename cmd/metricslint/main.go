// Command metricslint is the end-to-end exposition gate behind `make
// metrics-check`: it starts a real timber-serve process, waits for
// /metrics to come up, runs a query so the latency histograms have
// samples, scrapes the exposition, and validates it with the built-in
// linter (internal/obs.LintExposition) — no external Prometheus
// tooling required. It exits nonzero when the exposition is malformed
// or thinner than the coverage floor (at least one counter family, one
// gauge, and one labeled histogram).
//
// Usage:
//
//	metricslint -serve ./timber-serve -db bib.timber
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"timber/internal/bench"
	"timber/internal/obs"
)

func main() {
	serveBin := flag.String("serve", "", "path to the timber-serve binary to launch")
	dbPath := flag.String("db", "timber.db", "database file to serve")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline for startup + scrape")
	flag.Parse()
	if *serveBin == "" {
		fmt.Fprintln(os.Stderr, "metricslint: -serve is required")
		os.Exit(2)
	}
	if err := run(*serveBin, *dbPath, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(1)
	}
}

// freeAddr reserves an ephemeral loopback port and releases it for the
// child to bind. The tiny window between Close and the child's Listen
// is tolerable for a CI gate.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}

func run(serveBin, dbPath string, timeout time.Duration) error {
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	// -slowquery 1ns exercises the tracing path on every request, so
	// the scrape also covers exec_operator_seconds.
	cmd := exec.Command(serveBin, "-db", dbPath, "-addr", addr, "-slowquery", "1ns")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", serveBin, err)
	}
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _, _ = cmd.Process.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
		}
	}()

	base := "http://" + addr
	deadline := time.Now().Add(timeout)
	if err := waitReady(base+"/metrics", deadline); err != nil {
		return err
	}

	// One real query populates the engine and exec histogram families.
	qresp, err := http.Post(base+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query": %q}`, bench.Query1Text)))
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	qbody, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		return fmt.Errorf("query: status %d: %s", qresp.StatusCode, qbody)
	}
	if qresp.Header.Get("X-Query-ID") == "" {
		return fmt.Errorf("query response missing X-Query-ID header")
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		return fmt.Errorf("scrape: Content-Type = %q, want %q", ct, obs.ExpositionContentType)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}

	sum, errs := obs.LintExposition(data)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "metricslint:", e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("exposition has %d violations", len(errs))
	}
	if sum.Counters < 1 || sum.Gauges < 1 || sum.LabeledHistograms < 1 {
		return fmt.Errorf("exposition coverage below floor (need ≥1 counter, ≥1 gauge, ≥1 labeled histogram): %v", sum)
	}
	fmt.Printf("metricslint: OK — %v\n", sum)
	return nil
}

// waitReady polls url until it answers 200 or the deadline passes.
func waitReady(url string, deadline time.Time) error {
	for {
		resp, err := http.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("service never became ready: %w", err)
			}
			return fmt.Errorf("service never became ready")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
