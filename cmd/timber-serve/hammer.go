package main

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timber/internal/bench"
	"timber/internal/engine"
	"timber/internal/obs"
	"timber/internal/storage"
)

// runHammer is the self-benchmark mode: it stands the full service up
// on an ephemeral loopback port — real HTTP, real handler stack, real
// instrument middleware — fires total /query requests from clients
// concurrent goroutines, and reports the server-side latency
// distribution from the http_request_seconds histogram (the same
// series a Prometheus scrape would show). The per-request log is
// discarded: at hammer rates it would swamp stderr and distort the
// numbers.
func runHammer(dbPath string, poolMB, cacheSize int, cfg config, total, clients int, outFile string) (err error) {
	db, err := storage.Open(dbPath, storage.Options{PoolPages: poolMB * 1024 * 1024 / 8192})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	eng := engine.New(db, engine.Options{CacheSize: cacheSize, Parallelism: cfg.parallelism})
	cfg.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := newServer(eng, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	if clients < 1 {
		clients = 1
	}
	url := "http://" + ln.Addr().String() + "/query"
	body := fmt.Sprintf(`{"query": %q}`, bench.Query1Text)

	var errors atomic.Int64
	var wg sync.WaitGroup
	next := atomic.Int64{}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(total) {
				resp, rerr := http.Post(url, "application/json", strings.NewReader(body))
				if rerr != nil {
					errors.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errors.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	// The report reads the histogram the middleware filled — server
	// truth, byte-compatible with what /metrics exposes.
	h := eng.Registry().HistogramVec("http_request_seconds", "",
		obs.DefaultLatencyBuckets, "path").With("/query")
	rep := &bench.ServeReport{
		Benchmark:     "timber-serve /query hammer (paper Query 1)",
		Requests:      total,
		Errors:        int(errors.Load()),
		Clients:       clients,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		WallNS:        wall.Nanoseconds(),
		ThroughputRPS: float64(total) / wall.Seconds(),
		P50MS:         1000 * h.Quantile(0.50),
		P95MS:         1000 * h.Quantile(0.95),
		P99MS:         1000 * h.Quantile(0.99),
	}
	if n := h.Count(); n > 0 {
		rep.MeanMS = 1000 * h.Sum() / float64(n)
	}
	if runtime.NumCPU() == 1 {
		rep.Note = "single-CPU host: concurrent clients interleave on one core, so latency under load includes scheduling delay"
	}
	fmt.Fprintf(os.Stderr, "timber-serve: hammer %d requests, %d clients: %.0f req/s, p50 %.2fms p95 %.2fms p99 %.2fms (%d errors)\n",
		total, clients, rep.ThroughputRPS, rep.P50MS, rep.P95MS, rep.P99MS, rep.Errors)
	if outFile != "" {
		if err := rep.WriteJSON(outFile); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "timber-serve: wrote %s\n", outFile)
	}
	return nil
}
