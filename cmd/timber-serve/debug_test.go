package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"timber/internal/engine"
	"timber/internal/obs"
	"timber/internal/paperdata"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

// testServerEvents is testServer with the event journal enabled — the
// -events N configuration.
func testServerEvents(t *testing.T, cfg config) *server {
	t.Helper()
	db, err := storage.CreateTemp(storage.Options{Journal: obs.NewJournal(4096)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	return newServer(engine.New(db, engine.Options{}), cfg)
}

// eventLine mirrors the journal's JSON-lines wire shape for tests.
type eventLine struct {
	Seq    uint64 `json:"seq"`
	Type   string `json:"type"`
	QID    string `json:"qid"`
	WALSeq uint64 `json:"wal_seq"`
	Epoch  uint64 `json:"epoch"`
	DurNS  int64  `json:"dur_ns"`
	Count  int64  `json:"count"`
	Aux    int64  `json:"aux"`
	Label  string `json:"label"`
	Err    string `json:"err"`
}

func getDebug(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func parseEventLines(t *testing.T, body string) []eventLine {
	t.Helper()
	var out []eventLine
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var ev eventLine
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparsable event line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestDebugEvents: /debug/events streams the journal as JSON lines and
// honors the type/qid/since/limit filters; ?schema=1 lists the
// registered taxonomy; unknown type names are a 400.
func TestDebugEvents(t *testing.T) {
	s := testServerEvents(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %s", resp.StatusCode, raw)
	}
	qid := resp.Header.Get("X-Query-ID")

	dresp, dbody := getDebug(t, ts, "/debug/events")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events status = %d, body %s", dresp.StatusCode, dbody)
	}
	if ct := dresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	events := parseEventLines(t, dbody)
	if len(events) == 0 {
		t.Fatal("no events after a query")
	}
	var maxSeq uint64
	foundDone := false
	for i, ev := range events {
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("events not in seq order: %d after %d", ev.Seq, events[i-1].Seq)
		}
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
		if ev.Type == "query_done" && ev.QID == qid {
			foundDone = true
			if ev.DurNS <= 0 || ev.Count <= 0 {
				t.Errorf("query_done missing duration/rows: %+v", ev)
			}
		}
	}
	if !foundDone {
		t.Errorf("no query_done event for qid %q in:\n%s", qid, dbody)
	}

	// type filter.
	_, fbody := getDebug(t, ts, "/debug/events?type=query_done")
	for _, ev := range parseEventLines(t, fbody) {
		if ev.Type != "query_done" {
			t.Errorf("type filter leaked %q", ev.Type)
		}
	}

	// qid filter.
	_, qbody := getDebug(t, ts, "/debug/events?qid="+qid)
	qevents := parseEventLines(t, qbody)
	if len(qevents) == 0 {
		t.Errorf("qid filter matched nothing for %q", qid)
	}
	for _, ev := range qevents {
		if ev.QID != qid {
			t.Errorf("qid filter leaked %q", ev.QID)
		}
	}

	// since is a resumption cursor: a fresh query's events all land
	// past the previously observed maximum.
	if resp2, raw2 := postQuery(t, ts, string(body)); resp2.StatusCode != http.StatusOK {
		t.Fatalf("second query status = %d, body %s", resp2.StatusCode, raw2)
	}
	_, sbody := getDebug(t, ts, fmt.Sprintf("/debug/events?since=%d", maxSeq))
	sevents := parseEventLines(t, sbody)
	if len(sevents) == 0 {
		t.Error("since cursor returned nothing after a new query")
	}
	for _, ev := range sevents {
		if ev.Seq <= maxSeq {
			t.Errorf("since=%d returned seq %d", maxSeq, ev.Seq)
		}
	}

	// limit keeps the newest N.
	_, lbody := getDebug(t, ts, "/debug/events?limit=1")
	if levents := parseEventLines(t, lbody); len(levents) != 1 {
		t.Errorf("limit=1 returned %d events", len(levents))
	}

	// Unknown type names are a client error, not an empty stream.
	if bresp, _ := getDebug(t, ts, "/debug/events?type=bogus"); bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown type status = %d, want 400", bresp.StatusCode)
	}

	// The schema view lists the registered taxonomy.
	schresp, schbody := getDebug(t, ts, "/debug/events?schema=1")
	if schresp.StatusCode != http.StatusOK {
		t.Fatalf("schema status = %d", schresp.StatusCode)
	}
	for _, want := range []string{"query_done", "txn_commit", "slow_query", "checkpoint"} {
		if !strings.Contains(schbody, want) {
			t.Errorf("schema missing %q", want)
		}
	}
}

// TestDebugJournalDisabled: without -events the journal endpoints
// answer 503 with a hint, and /debug/storage still works.
func TestDebugJournalDisabled(t *testing.T) {
	s := testServer(t, config{}) // no journal
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for _, path := range []string{"/debug/events", "/debug/flight", "/debug/anomalies"} {
		resp, body := getDebug(t, ts, path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s status = %d, want 503", path, resp.StatusCode)
		}
		if !strings.Contains(body, "-events") {
			t.Errorf("%s error does not name the flag: %s", path, body)
		}
	}
	if resp, body := getDebug(t, ts, "/debug/storage"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/storage status = %d, body %s", resp.StatusCode, body)
	}
}

// TestDebugStorage: the storage view carries the epoch, watermarks and
// journal state a correlation session starts from.
func TestDebugStorage(t *testing.T) {
	s := testServerEvents(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, body := getDebug(t, ts, "/debug/storage")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"epoch", "commit_seq", "checkpoints", "num_pages", "journal_capacity"} {
		if _, ok := st[key]; !ok {
			t.Errorf("storage view missing %q: %s", key, body)
		}
	}
	if st["journal_capacity"].(float64) != 4096 {
		t.Errorf("journal_capacity = %v, want 4096", st["journal_capacity"])
	}
}

// TestPprofGatedBehindDebugFlag: pprof mounts only under -debug; the
// default server must 404 the whole /debug/pprof/ subtree (profiling
// endpoints are never ambiently exposed).
func TestPprofGatedBehindDebugFlag(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		if resp, _ := getDebug(t, ts, path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d without -debug, want 404", path, resp.StatusCode)
		}
	}

	sd := testServer(t, config{debug: true})
	tsd := httptest.NewServer(sd.handler())
	defer tsd.Close()
	resp, body := getDebug(t, tsd, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d with -debug, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected body:\n%.200s", body)
	}
}

// TestSlowQueryCorrelation: a slow query's journal event, flight
// record and log line all carry the WAL window that joins it to the
// commits and checkpoints it overlapped. The test scripts the overlap
// deterministically: the execute hook performs an ingest and a
// checkpoint mid-query.
func TestSlowQueryCorrelation(t *testing.T) {
	var logBuf syncBuffer
	s := testServerEvents(t, config{
		slowQuery: time.Nanosecond, // every query is "slow"
		logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	db := s.eng.DB()
	orig := s.execute
	s.execute = func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error) {
		doc, err := xmltree.ParseString("<d><x>mid</x></d>")
		if err != nil {
			t.Error(err)
		}
		if _, err := db.InsertDocument("mid.xml", doc, db.DefaultSyncPolicy()); err != nil {
			t.Error(err)
		}
		if err := db.Checkpoint(); err != nil {
			t.Error(err)
		}
		return orig(ctx, pq, o)
	}

	body, _ := json.Marshal(queryRequest{Query: query1, Strategy: "groupby"})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	qid := resp.Header.Get("X-Query-ID")

	// The slow_query event: aux holds the window's low WAL seq,
	// wal_seq the high, count the checkpoints overlapped.
	_, ebody := getDebug(t, ts, "/debug/events?type=slow_query&qid="+qid)
	sevents := parseEventLines(t, ebody)
	if len(sevents) != 1 {
		t.Fatalf("got %d slow_query events, want 1:\n%s", len(sevents), ebody)
	}
	se := sevents[0]
	walLo, walHi := uint64(se.Aux), se.WALSeq
	if walHi <= walLo {
		t.Errorf("WAL window [%d, %d] does not contain the mid-query commit", walLo, walHi)
	}
	if se.Count < 1 {
		t.Errorf("slow_query checkpoints = %d, want >= 1", se.Count)
	}
	if se.Label != "groupby" || se.DurNS <= 0 {
		t.Errorf("slow_query event = %+v", se)
	}

	// The window joins to the exact commit: a txn_commit event with
	// walLo < seq <= walHi exists and names the mid-query document.
	_, cbody := getDebug(t, ts, "/debug/events?type=txn_commit")
	overlapped := 0
	for _, ev := range parseEventLines(t, cbody) {
		if ev.WALSeq > walLo && ev.WALSeq <= walHi {
			overlapped++
			if ev.Label != "insert:mid.xml" {
				t.Errorf("overlapping commit = %q, want insert:mid.xml", ev.Label)
			}
		}
	}
	if overlapped != 1 {
		t.Errorf("found %d commits in window (%d, %d], want 1", overlapped, walLo, walHi)
	}

	// /debug/flight?qid= serves the same record the log line describes.
	fresp, fbody := getDebug(t, ts, "/debug/flight?qid="+qid)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight?qid= status = %d, body %s", fresp.StatusCode, fbody)
	}
	var fr obs.FlightRecord
	if err := json.Unmarshal([]byte(fbody), &fr); err != nil {
		t.Fatalf("flight record not JSON: %v\n%s", err, fbody)
	}
	if !fr.Slow || fr.QID != qid || fr.Query != query1 || fr.Strategy != "groupby" {
		t.Errorf("flight record = %+v", fr)
	}
	if fr.WALSeqLow != walLo || fr.WALSeqHigh != walHi || fr.Checkpoints != se.Count {
		t.Errorf("flight window [%d, %d] ck %d != event window [%d, %d] ck %d",
			fr.WALSeqLow, fr.WALSeqHigh, fr.Checkpoints, walLo, walHi, se.Count)
	}
	if fr.Trace == nil || fr.Rows <= 0 {
		t.Errorf("flight record missing trace/rows: trace=%v rows=%d", fr.Trace, fr.Rows)
	}

	// The slow-query log line carries the same window.
	var slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparsable log line %q: %v", line, err)
		}
		if rec["msg"] == "slow query" {
			slow = rec
		}
	}
	if slow == nil {
		t.Fatalf("no slow-query log line:\n%s", logBuf.String())
	}
	if uint64(slow["wal_lo"].(float64)) != walLo || uint64(slow["wal_hi"].(float64)) != walHi {
		t.Errorf("log window = [%v, %v], event window = [%d, %d]", slow["wal_lo"], slow["wal_hi"], walLo, walHi)
	}
	if int64(slow["checkpoints"].(float64)) != se.Count {
		t.Errorf("log checkpoints = %v, want %d", slow["checkpoints"], se.Count)
	}

	// An unknown qid is a 404, not an empty record.
	if nresp, _ := getDebug(t, ts, "/debug/flight?qid=nope"); nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown qid status = %d, want 404", nresp.StatusCode)
	}
}

// TestDebugFlightExplain: an explain run's flight record carries the
// EXPLAIN report joined to the same qid.
func TestDebugFlightExplain(t *testing.T) {
	s := testServerEvents(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1, Explain: true})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	qid := resp.Header.Get("X-Query-ID")

	fresp, fbody := getDebug(t, ts, "/debug/flight?qid="+qid)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", fresp.StatusCode, fbody)
	}
	var fr struct {
		QID     string          `json:"qid"`
		Explain *engine.Explain `json:"explain"`
	}
	if err := json.Unmarshal([]byte(fbody), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Explain == nil || !fr.Explain.Executed {
		t.Errorf("flight record missing executed EXPLAIN join: %s", fbody)
	}
}

// TestDebugEventsConcurrentHammer exercises the full stack under
// -race: concurrent ingest transactions, queries and checkpoints all
// write the journal while readers stream /debug/events. Afterwards
// every emitted event must be present exactly once (the ring is larger
// than the event count) with strictly increasing sequence numbers.
func TestDebugEventsConcurrentHammer(t *testing.T) {
	s := testServerEvents(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	db := s.eng.DB()

	const (
		writers    = 2
		queriers   = 2
		iterations = 10
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: stream /debug/events until the writers finish; the max
	// seq they observe must never decrease across polls.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/debug/events")
				if err != nil {
					t.Error(err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader status = %d", resp.StatusCode)
					return
				}
				var maxSeq uint64
				for _, ev := range parseEventLines(t, string(b)) {
					if ev.Seq > maxSeq {
						maxSeq = ev.Seq
					}
				}
				if maxSeq < last {
					t.Errorf("observed seq went backwards: %d after %d", maxSeq, last)
					return
				}
				last = maxSeq
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < iterations; i++ {
				name := fmt.Sprintf("doc-%d-%d.xml", w, i)
				doc, err := xmltree.ParseString("<d><x>v</x></d>")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := db.InsertDocument(name, doc, db.DefaultSyncPolicy()); err != nil {
					t.Errorf("insert %s: %v", name, err)
					return
				}
				if err := db.DeleteDocument(name, db.DefaultSyncPolicy()); err != nil {
					t.Errorf("delete %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < queriers; q++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			body, _ := json.Marshal(queryRequest{Query: query1})
			for i := 0; i < iterations; i++ {
				resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; i < iterations; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	wg.Wait()

	// No lost writes: the journal's reservation count equals the number
	// of distinct retained events (capacity exceeds the event count, so
	// nothing was overwritten) and sequences are exactly 1..seq.
	j := s.journal()
	total := j.Seq()
	if total == 0 {
		t.Fatal("no events emitted")
	}
	if cap := uint64(j.Capacity()); total > cap {
		t.Fatalf("test produced %d events, over the ring capacity %d — shrink the workload", total, cap)
	}
	events := j.Events(obs.EventFilter{})
	if uint64(len(events)) != total {
		t.Fatalf("retained %d events, reserved %d — writes were lost", len(events), total)
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}
