package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"timber/internal/engine"
	"timber/internal/exec"
	"timber/internal/match"
	"timber/internal/obs"
)

// config carries the service knobs from flags (or tests) to the server.
type config struct {
	// maxInFlight bounds concurrently executing queries; requests past
	// the bound are rejected with 429 rather than queued, so a burst
	// degrades loudly instead of stacking latency. <= 0 means no bound.
	maxInFlight int
	// defaultTimeout applies to requests that do not set timeout_ms.
	defaultTimeout time.Duration
	// maxTimeout caps client-requested timeouts.
	maxTimeout time.Duration
	// parallelism is the per-query worker bound (0 = GOMAXPROCS).
	parallelism int
	// slowQuery, when positive, traces every query and emits one
	// structured log line — query ID, query text, full operator trace —
	// for each execution at or above this duration.
	slowQuery time.Duration
	// debug mounts net/http/pprof on the /debug mux. Off by default:
	// profiling endpoints are an explicit operator choice.
	debug bool
	// crashDir is where panic/SIGQUIT journal dumps land ("" = cwd).
	crashDir string
	// logger receives the structured request log. Nil discards (tests,
	// hammer mode); main wires os.Stderr.
	logger *slog.Logger
}

// server is the HTTP face of an engine. Handlers are safe for
// concurrent use — all mutable state is the admission semaphore and
// registry metrics.
type server struct {
	eng *engine.Engine
	cfg config
	sem chan struct{}

	requests *obs.Metric
	okCount  *obs.Metric
	badReqs  *obs.Metric
	timeouts *obs.Metric
	rejected *obs.Metric

	// httpSeconds and httpResponses are the request-level families
	// every endpoint reports into through the instrument middleware;
	// inFlight/draining are the liveness gauges a dashboard alerts on.
	httpSeconds   *obs.HistogramVec
	httpResponses *obs.CounterVec
	inFlight      *obs.Gauge
	draining      *obs.Gauge
	logger        *slog.Logger

	// execute runs a prepared query; tests replace it to script
	// timeouts and backpressure deterministically.
	execute func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error)
}

func newServer(eng *engine.Engine, cfg config) *server {
	if cfg.defaultTimeout <= 0 {
		cfg.defaultTimeout = 30 * time.Second
	}
	if cfg.maxTimeout <= 0 {
		cfg.maxTimeout = 5 * time.Minute
	}
	if cfg.logger == nil {
		cfg.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := eng.Registry()
	obs.RegisterRuntimeMetrics(reg)
	s := &server{
		eng:      eng,
		cfg:      cfg,
		requests: reg.Counter("serve_requests"),
		okCount:  reg.Counter("serve_ok"),
		badReqs:  reg.Counter("serve_bad_request"),
		timeouts: reg.Counter("serve_timeout"),
		rejected: reg.Counter("serve_rejected"),
		httpSeconds: reg.HistogramVec("http_request_seconds",
			"HTTP request latency by endpoint.", obs.DefaultLatencyBuckets, "path"),
		httpResponses: reg.CounterVec("http_responses_total",
			"HTTP responses by endpoint and status code.", "path", "code"),
		inFlight: reg.Gauge("serve_in_flight", "Requests currently being served."),
		draining: reg.Gauge("serve_draining", "1 while the server drains for shutdown."),
		logger:   cfg.logger,
		execute: func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error) {
			return pq.Execute(ctx, o)
		},
	}
	if cfg.maxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.maxInFlight)
	}
	return s
}

// handler builds the route table, wrapped in the instrument middleware.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	// The introspection tree lives on its own mux so the query routes
	// and the debug routes can never shadow each other (and pprof, when
	// enabled, only ever mounts there).
	mux.Handle("/debug/", s.debugHandler())
	return s.instrument(mux)
}

// setDraining flips the drain gauge; main calls it when shutdown
// begins so a scraper can tell a draining instance from a dead one.
func (s *server) setDraining() {
	s.draining.Set(1)
	s.logger.Info("draining")
}

// metricPath maps a request path to its metric label. Only the fixed
// route set appears verbatim — arbitrary client paths must not mint
// unbounded label values.
func metricPath(p string) string {
	switch p {
	case "/query", "/ingest", "/stats", "/metrics":
		return p
	}
	if strings.HasPrefix(p, "/debug/") {
		return "debug"
	}
	return "other"
}

// statusRecorder captures the response status for the request log and
// the http_responses_total code label.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (rec *statusRecorder) WriteHeader(code int) {
	if rec.code == 0 {
		rec.code = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(b []byte) (int, error) {
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	return rec.ResponseWriter.Write(b)
}

func (rec *statusRecorder) status() int {
	if rec.code == 0 {
		return http.StatusOK
	}
	return rec.code
}

// instrument is the request middleware: it mints the query ID (echoed
// in the X-Query-ID header and carried through the context into the
// engine), times the request into http_request_seconds{path}, counts
// the response into http_responses_total{path,code}, tracks the
// in-flight gauge, and writes one structured log line per request.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		qid := obs.NewQueryID()
		w.Header().Set("X-Query-ID", qid)
		rec := &statusRecorder{ResponseWriter: w}
		s.inFlight.Inc()
		defer func() {
			// Crash-time dump: flush the journal's tail to disk before the
			// panic propagates (net/http recovers handler panics, but the
			// in-memory journal would be useless by the time anyone looks).
			if p := recover(); p != nil {
				s.journal().Emit(obs.Event{Type: obs.EvQueryError, QID: qid, Err: fmt.Sprintf("panic: %v", p)})
				s.dumpJournal("panic")
				panic(p)
			}
		}()
		next.ServeHTTP(rec, r.WithContext(obs.WithQueryID(r.Context(), qid)))
		s.inFlight.Dec()
		elapsed := time.Since(start)
		path := metricPath(r.URL.Path)
		s.httpSeconds.With(path).ObserveDuration(elapsed)
		s.httpResponses.With(path, strconv.Itoa(rec.status())).Inc()
		s.logger.Info("request",
			"qid", qid,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status(),
			"elapsed_ms", float64(elapsed.Microseconds())/1000)
	})
}

// queryRequest is the /query request body (POST) or query-parameter
// set (GET: q, strategy, matcher, timeout_ms, parallelism, explain).
type queryRequest struct {
	// Query is the XQuery-subset text to run.
	Query string `json:"query"`
	// Strategy names an exec.Strategy ("" = auto: the cost-based
	// planner picks the plan; an explicit name is an override).
	Strategy string `json:"strategy,omitempty"`
	// Matcher names the pattern matcher for the physical plan ("" or
	// "auto" = planner decides; "binary"/"twig" are overrides). Results
	// are byte-identical across matchers.
	Matcher string `json:"matcher,omitempty"`
	// TimeoutMS overrides the service's default per-request timeout,
	// capped at the configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Parallelism overrides the per-query worker bound.
	Parallelism int `json:"parallelism,omitempty"`
	// Explain requests the planner's EXPLAIN report alongside the
	// result: plan choice, costed candidates, and per-operator
	// estimates joined against the run's actual row counts
	// (GET: ?explain=1).
	Explain bool `json:"explain,omitempty"`
}

// queryResponse is the /query success body. Trees carries the result
// serialized exactly as timber-query prints it, so the two paths are
// byte-comparable.
type queryResponse struct {
	Trees    string `json:"trees"`
	Count    int    `json:"count"`
	Strategy string `json:"strategy"`
	// Matcher is the pattern matcher the physical plan ran (absent for
	// strategies that do not drive package match).
	Matcher   string  `json:"matcher,omitempty"`
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Explain is present when the request asked for it.
	Explain *engine.Explain `json:"explain,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *server) parseRequest(r *http.Request) (queryRequest, error) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		req.Strategy = q.Get("strategy")
		req.Matcher = q.Get("matcher")
		if v := q.Get("timeout_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad timeout_ms %q", v)
			}
			req.TimeoutMS = n
		}
		if v := q.Get("parallelism"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad parallelism %q", v)
			}
			req.Parallelism = n
		}
		if v := q.Get("explain"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return req, fmt.Errorf("bad explain %q", v)
			}
			req.Explain = b
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %v", err)
		}
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if req.Query == "" {
		return req, errors.New("missing query (POST {\"query\": ...} or GET ?q=...)")
	}
	return req, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	req, err := s.parseRequest(r)
	if err != nil {
		s.badReqs.Inc()
		status := http.StatusBadRequest
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
			w.Header().Set("Allow", "GET, POST")
		}
		writeError(w, status, "%v", err)
		return
	}

	// Admission control before any work: a full service sheds load
	// with 429 + Retry-After instead of queueing unboundedly.
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity (%d queries in flight)", s.cfg.maxInFlight)
			return
		}
	}

	var eo engine.ExecOptions
	if req.Strategy != "" {
		strat, err := exec.ParseStrategy(req.Strategy)
		if err != nil {
			s.badReqs.Inc()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		eo.Strategy = strat
	}
	if req.Matcher != "" {
		mkind, err := match.ParseMatcher(req.Matcher)
		if err != nil {
			s.badReqs.Inc()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		eo.Matcher = mkind
	}
	eo.Parallelism = req.Parallelism
	if eo.Parallelism == 0 {
		eo.Parallelism = s.cfg.parallelism
	}

	timeout := s.cfg.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.maxTimeout {
		timeout = s.cfg.maxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	pq, cacheHit, err := s.eng.PrepareCached(req.Query)
	if err != nil {
		s.badReqs.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// With a slow-query threshold configured, every execution runs
	// under a private wall-clock-only tracer whose root span is named
	// by the request's query ID — the EXPLAIN-ANALYZE trace is already
	// in hand if the run turns out slow, with no second execution.
	qid := obs.QueryIDFrom(r.Context())
	var tracer *obs.Tracer
	if s.cfg.slowQuery > 0 && !req.Explain {
		// An explain run owns its tracer (ExplainExecute joins the
		// trace's actuals into the report), so the slow-query tracer
		// only wraps plain executions.
		tracer = obs.New(qid, nil)
		eo.Tracer = tracer
	}

	// The correlation window: the WAL commit sequence and checkpoint
	// count on either side of the execution join this query to the
	// exact ingest commits and checkpoints it overlapped — any
	// txn_commit event with walLo < seq <= walHi ran concurrently.
	db := s.eng.DB()
	walLo := db.CommitSeq()
	ckLo := db.IngestCounters().Checkpoints

	start := time.Now()
	var res *engine.Result
	var report *engine.Explain
	if req.Explain {
		report, res, err = pq.ExplainExecute(ctx, eo)
	} else {
		res, err = s.execute(ctx, pq, eo)
	}
	elapsed := time.Since(start)
	strategy := ""
	if res != nil {
		strategy = res.Strategy.String()
	}
	s.observeQuery(queryObservation{
		tracer:      tracer,
		qid:         qid,
		query:       req.Query,
		strategy:    strategy,
		start:       start,
		elapsed:     elapsed,
		walLo:       walLo,
		walHi:       db.CommitSeq(),
		checkpoints: db.IngestCounters().Checkpoints - ckLo,
		res:         res,
		report:      report,
		err:         err,
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, "query timed out after %v", timeout)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.okCount.Inc()
	qres := queryResponse{
		Trees:     res.Serialize(),
		Count:     len(res.Trees),
		Strategy:  res.Strategy.String(),
		CacheHit:  cacheHit,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Explain:   report,
	}
	if res.Strategy == exec.StrategyPhysical {
		qres.Matcher = res.Matcher.String()
	}
	writeJSON(w, http.StatusOK, qres)
}

// queryObservation carries one execution's observability payload from
// handleQuery into observeQuery: the optional slow-query tracer, the
// WAL/checkpoint correlation window, and the outcome.
type queryObservation struct {
	tracer      *obs.Tracer
	qid         string
	query       string
	strategy    string
	start       time.Time
	elapsed     time.Duration
	walLo       uint64 // WAL commit sequence before execution
	walHi       uint64 // WAL commit sequence after execution
	checkpoints uint64 // checkpoints completed during execution
	res         *engine.Result
	report      *engine.Explain
	err         error
}

// observeQuery finishes a slow-query tracer (operator spans fold into
// the cumulative exec_operator_seconds histograms — children only, the
// root is named by query ID, an unbounded label value), files the
// query's flight record, and — for an execution at or above the
// threshold — emits the slow_query journal event plus one structured
// log line carrying the query ID, the query text, the WAL/checkpoint
// window and the full span tree as JSON. /debug/flight?qid=... serves
// the same record the log line describes.
func (s *server) observeQuery(qo queryObservation) {
	var d *obs.SpanData
	if qo.tracer != nil {
		d = qo.tracer.Finish()
		for _, c := range d.Children {
			obs.RecordTree(s.eng.Registry(), c)
		}
	}
	slow := s.cfg.slowQuery > 0 && qo.elapsed >= s.cfg.slowQuery
	if j := s.journal(); j != nil {
		rec := obs.FlightRecord{
			QID:         qo.qid,
			Query:       qo.query,
			Strategy:    qo.strategy,
			StartNS:     qo.start.UnixNano(),
			WallNS:      qo.elapsed.Nanoseconds(),
			Epoch:       s.eng.DB().Epoch(),
			WALSeqLow:   qo.walLo,
			WALSeqHigh:  qo.walHi,
			Checkpoints: int64(qo.checkpoints),
			Slow:        slow,
			Trace:       d,
		}
		if qo.res != nil {
			rec.Rows = int64(len(qo.res.Trees))
			rec.ValueLookups = int64(qo.res.Stats.ValueLookups)
			rec.IndexPostings = int64(qo.res.Stats.IndexPostings)
		}
		if qo.report != nil {
			rec.Explain = qo.report
		}
		if qo.err != nil {
			rec.Error = qo.err.Error()
		}
		// When the executor already filed a trace-only record for this
		// qid (journal on, no server tracer), merge into it — keeping
		// its trace — rather than filing a duplicate.
		if !j.AnnotateFlight(qo.qid, func(fr *obs.FlightRecord) {
			if rec.Trace == nil {
				rec.Trace = fr.Trace
			}
			*fr = rec
		}) {
			j.AddFlight(rec)
		}
		if slow {
			j.Emit(obs.Event{
				Type:   obs.EvSlowQuery,
				QID:    qo.qid,
				DurNS:  qo.elapsed.Nanoseconds(),
				Label:  qo.strategy,
				Aux:    int64(qo.walLo),
				WALSeq: qo.walHi,
				Count:  int64(qo.checkpoints),
			})
		}
	}
	if !slow {
		return
	}
	trace := ""
	if d != nil {
		var b strings.Builder
		if err := d.WriteJSON(&b); err != nil {
			b.Reset()
			b.WriteString(d.Text())
		}
		trace = strings.TrimRight(b.String(), "\n")
	}
	s.logger.Warn("slow query",
		"qid", qo.qid,
		"elapsed_ms", float64(qo.elapsed.Microseconds())/1000,
		"threshold_ms", float64(s.cfg.slowQuery.Microseconds())/1000,
		"strategy", qo.strategy,
		"query", qo.query,
		"wal_lo", qo.walLo,
		"wal_hi", qo.walHi,
		"checkpoints", qo.checkpoints,
		"trace", trace)
}

// statsResponse is the /stats body: buffer-pool counters, plan-cache
// state and catalog size.
type statsResponse struct {
	Pool      any               `json:"pool"`
	Cache     engine.CacheStats `json:"plan_cache"`
	Documents int               `json:"documents"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Pool:      s.eng.DB().Stats(),
		Cache:     s.eng.CacheStats(),
		Documents: len(s.eng.DB().Documents()),
	})
}

// requireGet rejects non-GET methods on the read-only endpoints with
// 405 plus the Allow header the RFC demands.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	return false
}

// handleMetrics renders the full registry — service, engine, storage
// and runtime families — in the Prometheus text exposition format.
// ?format=text selects the terse human-facing name/value rendering.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.eng.Registry().WriteText(w)
		return
	}
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	_ = s.eng.Registry().WritePrometheus(w)
}
