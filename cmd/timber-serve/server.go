package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"timber/internal/engine"
	"timber/internal/exec"
	"timber/internal/obs"
)

// config carries the service knobs from flags (or tests) to the server.
type config struct {
	// maxInFlight bounds concurrently executing queries; requests past
	// the bound are rejected with 429 rather than queued, so a burst
	// degrades loudly instead of stacking latency. <= 0 means no bound.
	maxInFlight int
	// defaultTimeout applies to requests that do not set timeout_ms.
	defaultTimeout time.Duration
	// maxTimeout caps client-requested timeouts.
	maxTimeout time.Duration
	// parallelism is the per-query worker bound (0 = GOMAXPROCS).
	parallelism int
}

// server is the HTTP face of an engine. Handlers are safe for
// concurrent use — all mutable state is the admission semaphore and
// registry counters.
type server struct {
	eng *engine.Engine
	cfg config
	sem chan struct{}

	requests *obs.Metric
	okCount  *obs.Metric
	badReqs  *obs.Metric
	timeouts *obs.Metric
	rejected *obs.Metric

	// execute runs a prepared query; tests replace it to script
	// timeouts and backpressure deterministically.
	execute func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error)
}

func newServer(eng *engine.Engine, cfg config) *server {
	if cfg.defaultTimeout <= 0 {
		cfg.defaultTimeout = 30 * time.Second
	}
	if cfg.maxTimeout <= 0 {
		cfg.maxTimeout = 5 * time.Minute
	}
	s := &server{
		eng:      eng,
		cfg:      cfg,
		requests: eng.Registry().Counter("serve_requests"),
		okCount:  eng.Registry().Counter("serve_ok"),
		badReqs:  eng.Registry().Counter("serve_bad_request"),
		timeouts: eng.Registry().Counter("serve_timeout"),
		rejected: eng.Registry().Counter("serve_rejected"),
		execute: func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error) {
			return pq.Execute(ctx, o)
		},
	}
	if cfg.maxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.maxInFlight)
	}
	return s
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// queryRequest is the /query request body (POST) or query-parameter
// set (GET: q, strategy, timeout_ms).
type queryRequest struct {
	// Query is the XQuery-subset text to run.
	Query string `json:"query"`
	// Strategy names an exec.Strategy ("" = the engine default:
	// groupby when the rewrite applies, physical otherwise).
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS overrides the service's default per-request timeout,
	// capped at the configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Parallelism overrides the per-query worker bound.
	Parallelism int `json:"parallelism,omitempty"`
}

// queryResponse is the /query success body. Trees carries the result
// serialized exactly as timber-query prints it, so the two paths are
// byte-comparable.
type queryResponse struct {
	Trees     string  `json:"trees"`
	Count     int     `json:"count"`
	Strategy  string  `json:"strategy"`
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *server) parseRequest(r *http.Request) (queryRequest, error) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		req.Strategy = q.Get("strategy")
		if v := q.Get("timeout_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad timeout_ms %q", v)
			}
			req.TimeoutMS = n
		}
		if v := q.Get("parallelism"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad parallelism %q", v)
			}
			req.Parallelism = n
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %v", err)
		}
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if req.Query == "" {
		return req, errors.New("missing query (POST {\"query\": ...} or GET ?q=...)")
	}
	return req, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	req, err := s.parseRequest(r)
	if err != nil {
		s.badReqs.Inc()
		status := http.StatusBadRequest
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
		}
		writeError(w, status, "%v", err)
		return
	}

	// Admission control before any work: a full service sheds load
	// with 429 + Retry-After instead of queueing unboundedly.
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity (%d queries in flight)", s.cfg.maxInFlight)
			return
		}
	}

	var eo engine.ExecOptions
	if req.Strategy != "" {
		strat, err := exec.ParseStrategy(req.Strategy)
		if err != nil {
			s.badReqs.Inc()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		eo.Strategy = strat
	}
	eo.Parallelism = req.Parallelism
	if eo.Parallelism == 0 {
		eo.Parallelism = s.cfg.parallelism
	}

	timeout := s.cfg.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.maxTimeout {
		timeout = s.cfg.maxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	pq, cacheHit, err := s.eng.PrepareCached(req.Query)
	if err != nil {
		s.badReqs.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	res, err := s.execute(ctx, pq, eo)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, "query timed out after %v", timeout)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.okCount.Inc()
	writeJSON(w, http.StatusOK, queryResponse{
		Trees:     res.Serialize(),
		Count:     len(res.Trees),
		Strategy:  res.Strategy.String(),
		CacheHit:  cacheHit,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// statsResponse is the /stats body: buffer-pool counters, plan-cache
// state and catalog size.
type statsResponse struct {
	Pool      any               `json:"pool"`
	Cache     engine.CacheStats `json:"plan_cache"`
	Documents int               `json:"documents"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Pool:      s.eng.DB().Stats(),
		Cache:     s.eng.CacheStats(),
		Documents: len(s.eng.DB().Documents()),
	})
}

// handleMetrics renders the counter registry plus the storage-layer
// counters in text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.eng.Registry().WriteText(w)
	c := s.eng.DB().TraceCounters()
	fmt.Fprintf(w, "pool_fetches %d\n", c.Fetches)
	fmt.Fprintf(w, "pool_hits %d\n", c.Hits)
	fmt.Fprintf(w, "pool_physical_reads %d\n", c.PhysicalReads)
	fmt.Fprintf(w, "pool_physical_writes %d\n", c.PhysicalWrites)
	fmt.Fprintf(w, "index_node_visits %d\n", c.NodeVisits)
	fmt.Fprintf(w, "index_leaf_scans %d\n", c.LeafScans)
}
