// Command timber-serve is the long-lived query service over a timber
// database: it opens the database once, compiles queries through the
// engine facade's LRU plan cache, and serves concurrent clients over
// HTTP/JSON with per-request timeouts, admission control and graceful
// drain on SIGTERM/SIGINT.
//
// Usage:
//
//	timber-serve -db bib.timber -addr :8080
//	timber-serve -db bib.timber -slowquery 250ms -logjson
//	timber-serve -db bib.timber -hammer 200 -hammerclients 8 -hammerfile BENCH_serve.json
//	curl -s 'localhost:8080/query?q=FOR+$a+IN+...'
//	curl -s localhost:8080/query -d '{"query": "FOR $a IN ...", "strategy": "groupby"}'
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//	curl -s -X POST --data-binary @new.xml 'localhost:8080/ingest?name=new.xml&sync=always'
//	curl -s -X DELETE 'localhost:8080/ingest?name=new.xml'
//
// Endpoints:
//
//	POST /query  {"query": ..., "strategy"?: ..., "matcher"?: ..., "timeout_ms"?: ..., "parallelism"?: ...}
//	GET  /query?q=...&strategy=...&matcher=...&timeout_ms=...
//	     matcher selects the physical plan's pattern matcher (auto =
//	     planner decides; binary, twig override — byte-identical
//	     results either way).
//	     200 JSON result; 400 malformed query/strategy/matcher; 504 per-request
//	     timeout exceeded; 429 admission limit reached (Retry-After: 1);
//	     405 for other methods. Every response carries an X-Query-ID
//	     header that matches the structured request log.
//	POST   /ingest?name=NAME[&sync=always|group|none]  body: XML document.
//	DELETE /ingest?name=NAME[&sync=always|group|none]
//	     Durable writes through the WAL; queries already in flight keep
//	     reading their pinned snapshot. sync selects the per-request
//	     fsync policy (default: the -sync flag). 200 JSON receipt with
//	     the committed epoch; 400 parse/bad sync; 404 unknown document
//	     on DELETE; 409 duplicate name on POST; 429 admission limit.
//	GET  /stats    buffer-pool, plan-cache and catalog state as JSON.
//	GET  /metrics  Prometheus text exposition (counters, gauges, latency
//	               histograms, Go runtime stats); ?format=text selects
//	               the terse name-value format instead.
//	GET  /debug/events     event journal as JSON lines (?type=, ?qid=,
//	                       ?since=SEQ, ?limit=N filter; ?schema=1 lists
//	                       the registered event taxonomy).
//	GET  /debug/flight     flight recorder: recent query records with
//	                       operator traces, WAL/checkpoint correlation
//	                       and EXPLAIN joins (?qid= selects one).
//	GET  /debug/anomalies  the last-K error/anomaly events.
//	GET  /debug/storage    epoch, commit/durability watermarks, pinned
//	                       snapshots, WAL tail, reclaim backlog.
//	GET  /debug/pprof/...  net/http/pprof, mounted only under -debug.
//
// Observability: every request is logged as one structured log/slog
// line (text by default, JSON with -logjson) carrying the query ID,
// method, path, status and latency. With -slowquery D, each query is
// traced and any execution taking at least D additionally logs a
// "slow query" line whose trace field holds the full per-operator
// span tree, root named by the same query ID, plus the WAL commit
// window and checkpoint count the run overlapped; /debug/flight?qid=
// serves the matching record. -events N sizes the in-memory event
// journal the storage engine, WAL, planner and executor write into
// (0 disables it and every /debug journal endpoint answers 503). On
// panic or SIGQUIT the journal is dumped to a timestamped JSON-lines
// file in -crashdump's directory. -hammer N runs the self-benchmark:
// serve in-process, fire N concurrent /query requests, and report the
// server-side latency quantiles from the http_request_seconds
// histogram.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timber/internal/engine"
	"timber/internal/obs"
	"timber/internal/storage"
)

func main() {
	dbPath := flag.String("db", "timber.db", "database file")
	addr := flag.String("addr", "localhost:8080", "listen address")
	poolMB := flag.Int("poolmb", 32, "buffer pool size in MiB")
	parallel := flag.Int("parallel", 0, "per-query worker bound (0 = GOMAXPROCS, 1 = sequential)")
	cacheSize := flag.Int("cache", engine.DefaultCacheSize, "prepared-plan cache capacity (distinct query texts)")
	maxInFlight := flag.Int("maxinflight", 64, "admission limit on concurrently executing queries (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request timeout")
	maxTimeout := flag.Duration("maxtimeout", 5*time.Minute, "cap on client-requested timeouts")
	drainTimeout := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight requests")
	slowQuery := flag.Duration("slowquery", 0, "trace every query and log one structured line with the full operator trace for executions at or above this duration (0 = disabled, e.g. 250ms)")
	events := flag.Int("events", obs.DefaultJournalEvents, "event journal capacity in events (0 = journal disabled)")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/ (off by default; /debug/events etc. are always on)")
	crashDump := flag.String("crashdump", ".", "directory for panic/SIGQUIT event-journal dumps")
	logJSON := flag.Bool("logjson", false, "write the structured request log as JSON lines (default logfmt-style text)")
	syncFlag := flag.String("sync", "group", "default WAL fsync policy for /ingest writes: always, group, or none (per-request ?sync= overrides)")
	hammer := flag.Int("hammer", 0, "benchmark mode: serve in-process, fire this many /query requests, report server-side latency quantiles, exit")
	hammerClients := flag.Int("hammerclients", 8, "concurrent clients in -hammer mode")
	hammerFile := flag.String("hammerfile", "", "write the -hammer JSON report here (e.g. BENCH_serve.json)")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	cfg := config{
		maxInFlight:    *maxInFlight,
		defaultTimeout: *timeout,
		maxTimeout:     *maxTimeout,
		parallelism:    *parallel,
		slowQuery:      *slowQuery,
		debug:          *debug,
		crashDir:       *crashDump,
		logger:         logger,
	}
	var journal *obs.Journal
	if *events > 0 {
		journal = obs.NewJournal(*events)
	}
	syncPol, err := storage.ParseSyncPolicy(*syncFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timber-serve:", err)
		os.Exit(2)
	}
	if *hammer > 0 {
		err = runHammer(*dbPath, *poolMB, *cacheSize, cfg, *hammer, *hammerClients, *hammerFile)
	} else {
		err = run(*dbPath, *addr, *poolMB, *cacheSize, cfg, *drainTimeout, syncPol, journal)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "timber-serve:", err)
		os.Exit(1)
	}
}

func run(dbPath, addr string, poolMB, cacheSize int, cfg config, drainTimeout time.Duration, syncPol storage.SyncPolicy, journal *obs.Journal) (err error) {
	// The journal goes in through storage.Options so recovery events
	// fired during Open land in it too.
	db, err := storage.Open(dbPath, storage.Options{
		PoolPages:  poolMB * 1024 * 1024 / 8192,
		SyncPolicy: syncPol,
		Journal:    journal,
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	eng := engine.New(db, engine.Options{CacheSize: cacheSize, Parallelism: cfg.parallelism})
	srv := newServer(eng, cfg)
	httpSrv := &http.Server{Addr: addr, Handler: srv.handler()}

	// Graceful drain: on SIGTERM/SIGINT stop accepting connections,
	// let in-flight queries finish (bounded by drainTimeout), then
	// close the database.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// SIGQUIT dumps the event journal to a timestamped file and keeps
	// serving — the live-debugging analogue of the Go runtime's
	// goroutine dump (which this intercepts; use SIGABRT for that).
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			srv.dumpJournal("sigquit")
		}
	}()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "timber-serve: serving %s (%d documents) on http://%s\n",
			dbPath, len(db.Documents()), addr)
		if serr := httpSrv.ListenAndServe(); serr != nil && serr != http.ErrServerClosed {
			errc <- serr
			return
		}
		errc <- nil
	}()

	select {
	case serr := <-errc:
		return serr
	case <-ctx.Done():
	}
	srv.setDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if serr := httpSrv.Shutdown(shutdownCtx); serr != nil {
		return fmt.Errorf("drain: %w", serr)
	}
	return <-errc
}
