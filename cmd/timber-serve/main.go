// Command timber-serve is the long-lived query service over a timber
// database: it opens the database once, compiles queries through the
// engine facade's LRU plan cache, and serves concurrent clients over
// HTTP/JSON with per-request timeouts, admission control and graceful
// drain on SIGTERM/SIGINT.
//
// Usage:
//
//	timber-serve -db bib.timber -addr :8080
//	curl -s 'localhost:8080/query?q=FOR+$a+IN+...'
//	curl -s localhost:8080/query -d '{"query": "FOR $a IN ...", "strategy": "groupby"}'
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//
// Endpoints:
//
//	POST /query  {"query": ..., "strategy"?: ..., "timeout_ms"?: ..., "parallelism"?: ...}
//	GET  /query?q=...&strategy=...&timeout_ms=...
//	     200 JSON result; 400 malformed query/strategy; 504 per-request
//	     timeout exceeded; 429 admission limit reached (Retry-After: 1).
//	GET  /stats    buffer-pool, plan-cache and catalog state as JSON.
//	GET  /metrics  service and storage counters, text exposition format.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"timber/internal/engine"
	"timber/internal/storage"
)

func main() {
	dbPath := flag.String("db", "timber.db", "database file")
	addr := flag.String("addr", "localhost:8080", "listen address")
	poolMB := flag.Int("poolmb", 32, "buffer pool size in MiB")
	parallel := flag.Int("parallel", 0, "per-query worker bound (0 = GOMAXPROCS, 1 = sequential)")
	cacheSize := flag.Int("cache", engine.DefaultCacheSize, "prepared-plan cache capacity (distinct query texts)")
	maxInFlight := flag.Int("maxinflight", 64, "admission limit on concurrently executing queries (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request timeout")
	maxTimeout := flag.Duration("maxtimeout", 5*time.Minute, "cap on client-requested timeouts")
	drainTimeout := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight requests")
	flag.Parse()

	if err := run(*dbPath, *addr, *poolMB, *parallel, *cacheSize, *maxInFlight, *timeout, *maxTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "timber-serve:", err)
		os.Exit(1)
	}
}

func run(dbPath, addr string, poolMB, parallel, cacheSize, maxInFlight int, timeout, maxTimeout, drainTimeout time.Duration) (err error) {
	db, err := storage.Open(dbPath, storage.Options{PoolPages: poolMB * 1024 * 1024 / 8192})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	eng := engine.New(db, engine.Options{CacheSize: cacheSize, Parallelism: parallel})
	srv := newServer(eng, config{
		maxInFlight:    maxInFlight,
		defaultTimeout: timeout,
		maxTimeout:     maxTimeout,
		parallelism:    parallel,
	})
	httpSrv := &http.Server{Addr: addr, Handler: srv.handler()}

	// Graceful drain: on SIGTERM/SIGINT stop accepting connections,
	// let in-flight queries finish (bounded by drainTimeout), then
	// close the database.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "timber-serve: serving %s (%d documents) on http://%s\n",
			dbPath, len(db.Documents()), addr)
		if serr := httpSrv.ListenAndServe(); serr != nil && serr != http.ErrServerClosed {
			errc <- serr
			return
		}
		errc <- nil
	}()

	select {
	case serr := <-errc:
		return serr
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "timber-serve: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if serr := httpSrv.Shutdown(shutdownCtx); serr != nil {
		return fmt.Errorf("drain: %w", serr)
	}
	return <-errc
}
