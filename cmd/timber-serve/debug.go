package main

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"timber/internal/obs"
)

// The /debug tree is the server's read-only introspection surface over
// the event journal and the storage engine:
//
//	GET /debug/events?type=a,b&qid=...&since=SEQ&limit=N
//	    JSON lines, one journal event per line, oldest first. type
//	    filters by wire name (comma-separated), qid by query ID, since
//	    by journal sequence (a resumption cursor: pass the last seq you
//	    saw), limit keeps the newest N.
//	GET /debug/events?schema=1
//	    The registered event taxonomy (name, const, doc) as JSON.
//	GET /debug/flight[?qid=...]
//	    The flight recorder: recent query records with their operator
//	    traces, WAL/checkpoint correlation and EXPLAIN joins; ?qid=
//	    returns that query's record alone (404 when it has aged out).
//	GET /debug/anomalies
//	    The last-K error/anomaly events, oldest first.
//	GET /debug/storage
//	    Current epoch, commit/durability watermarks, pinned snapshots,
//	    WAL tail, checkpoint count and reclamation backlog.
//
// All of it mounts on a separate mux under /debug/ so the query
// endpoints never share a route table with introspection, and pprof
// joins that mux only when -debug is set — profiling endpoints must be
// an explicit operator choice, never ambiently exposed.

// debugHandler builds the /debug mux. pprof is registered only under
// -debug; without it /debug/pprof/ falls through to the mux's 404.
func (s *server) debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/events", s.handleDebugEvents)
	mux.HandleFunc("/debug/flight", s.handleDebugFlight)
	mux.HandleFunc("/debug/anomalies", s.handleDebugAnomalies)
	mux.HandleFunc("/debug/storage", s.handleDebugStorage)
	if s.cfg.debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// journal returns the engine's event journal (nil when disabled).
func (s *server) journal() *obs.Journal { return s.eng.DB().Journal() }

// requireJournal writes the 503 that tells an operator how to enable
// events; returns nil if the journal is off.
func (s *server) requireJournal(w http.ResponseWriter) *obs.Journal {
	j := s.journal()
	if j == nil {
		writeError(w, http.StatusServiceUnavailable, "event journal disabled (start with -events N)")
	}
	return j
}

func (s *server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	q := r.URL.Query()
	if v := q.Get("schema"); v != "" {
		writeJSON(w, http.StatusOK, obs.EventTypes())
		return
	}
	j := s.requireJournal(w)
	if j == nil {
		return
	}
	var f obs.EventFilter
	if v := q.Get("type"); v != "" {
		for _, name := range strings.Split(v, ",") {
			t, ok := obs.EventTypeByName(strings.TrimSpace(name))
			if !ok {
				writeError(w, http.StatusBadRequest, "unknown event type %q (GET /debug/events?schema=1 lists them)", name)
				return
			}
			f.Types = append(f.Types, t)
		}
	}
	f.QID = q.Get("qid")
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since %q", v)
			return
		}
		f.SinceSeq = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		f.Limit = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = j.WriteEvents(w, f)
}

func (s *server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	j := s.requireJournal(w)
	if j == nil {
		return
	}
	if qid := r.URL.Query().Get("qid"); qid != "" {
		rec, ok := j.FlightByQID(qid)
		if !ok {
			writeError(w, http.StatusNotFound, "no flight record for %q (retention: last %d queries)", qid, obs.DefaultFlightRecords)
			return
		}
		writeJSON(w, http.StatusOK, rec)
		return
	}
	writeJSON(w, http.StatusOK, j.Flights())
}

func (s *server) handleDebugAnomalies(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	j := s.requireJournal(w)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.Anomalies())
}

func (s *server) handleDebugStorage(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.eng.DB().DebugStatus())
}

// dumpJournal flushes the journal to a timestamped file in the
// configured crash-dump directory and logs where it went. Called from
// the panic middleware and the SIGQUIT handler; must never panic.
func (s *server) dumpJournal(reason string) {
	j := s.journal()
	if j == nil {
		return
	}
	path, err := j.DumpToFile(s.cfg.crashDir)
	if err != nil {
		s.logger.Error("event journal dump failed", "reason", reason, "err", err)
		return
	}
	s.logger.Error("event journal dumped", "reason", reason, "path", path)
}
