package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"

	"timber/internal/engine"
	"timber/internal/exec"
	"timber/internal/obs"
	"timber/internal/paperdata"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

const query1 = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

func testServer(t *testing.T, cfg config) *server {
	t.Helper()
	db, err := storage.CreateTemp(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.LoadDocument("bib.xml", paperdata.SampleDatabase()); err != nil {
		t.Fatal(err)
	}
	return newServer(engine.New(db, engine.Options{}), cfg)
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func decodeQueryResponse(t *testing.T, b []byte) queryResponse {
	t.Helper()
	var qr queryResponse
	if err := json.Unmarshal(b, &qr); err != nil {
		t.Fatalf("bad response %s: %v", b, err)
	}
	return qr
}

// TestQueryGolden: the success path returns the result trees exactly
// as timber-query serializes them, reports the strategy that ran, and
// flips cache_hit on the second request.
func TestQueryGolden(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// The reference bytes: what timber-query prints for this query.
	pq, err := s.eng.Prepare(query1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pq.Execute(context.Background(), engine.ExecOptions{Strategy: exec.StrategyGroupBy})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, tr := range ref.Trees {
		if err := xmltree.Serialize(&want, tr); err != nil {
			t.Fatal(err)
		}
	}

	body, _ := json.Marshal(queryRequest{Query: query1, Strategy: "groupby"})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	qr := decodeQueryResponse(t, raw)
	if qr.Trees != want.String() {
		t.Errorf("served trees differ from timber-query serialization:\n%q\nwant:\n%q", qr.Trees, want.String())
	}
	if qr.Strategy != "groupby" || qr.Count != len(ref.Trees) {
		t.Errorf("response meta = %+v", qr)
	}

	// Second request: the prepared plan is reused.
	resp2, raw2 := postQuery(t, ts, string(body))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	if qr2 := decodeQueryResponse(t, raw2); !qr2.CacheHit {
		t.Error("second request should report cache_hit")
	}

	// GET form agrees with POST.
	u := ts.URL + "/query?strategy=groupby&q=" + url.QueryEscape(query1)
	getResp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var getQR queryResponse
	if err := json.NewDecoder(getResp.Body).Decode(&getQR); err != nil {
		t.Fatal(err)
	}
	if getQR.Trees != qr.Trees {
		t.Error("GET and POST served different bytes")
	}
}

// TestQueryBadRequest: malformed queries, bad strategies/matchers and
// missing parameters are 400s, not 500s.
func TestQueryBadRequest(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	for name, body := range map[string]string{
		"malformed query": `{"query": "this is not xquery"}`,
		"bad strategy":    fmt.Sprintf(`{"query": %q, "strategy": "turbo"}`, query1),
		"bad matcher":     fmt.Sprintf(`{"query": %q, "matcher": "psychic"}`, query1),
		"missing query":   `{}`,
		"bad json":        `{"query": `,
	} {
		resp, raw := postQuery(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", name, resp.StatusCode, raw)
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %s", name, raw)
		}
	}
	if got := s.badReqs.Load(); got != 5 {
		t.Errorf("bad-request counter = %d, want 5", got)
	}
}

// TestQueryMatcher: ?matcher= overrides the physical plan's pattern
// matcher, the response reports which matcher ran, and the served
// bytes are identical across matchers.
func TestQueryMatcher(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	get := func(params string) queryResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(query1) + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
		}
		return decodeQueryResponse(t, raw)
	}

	base := get("&strategy=physical&matcher=binary")
	if base.Matcher != "binary" {
		t.Errorf("matcher override: response reports %q, want binary", base.Matcher)
	}
	twig := get("&strategy=physical&matcher=twig")
	if twig.Matcher != "twig" {
		t.Errorf("matcher override: response reports %q, want twig", twig.Matcher)
	}
	if twig.Trees != base.Trees {
		t.Error("twig matcher served different bytes than binary")
	}
	auto := get("&strategy=physical")
	if auto.Matcher != "binary" && auto.Matcher != "twig" {
		t.Errorf("auto run reports matcher %q, want a concrete pick", auto.Matcher)
	}
	if auto.Trees != base.Trees {
		t.Error("auto matcher served different bytes than binary")
	}

	// Non-physical strategies never drive package match: no matcher.
	if grp := get("&strategy=groupby"); grp.Matcher != "" {
		t.Errorf("groupby response reports matcher %q, want none", grp.Matcher)
	}
}

// TestQueryTimeout: a request whose deadline expires mid-execution
// returns 504. The execute hook parks until the context dies, standing
// in for a long query deterministically.
func TestQueryTimeout(t *testing.T) {
	s := testServer(t, config{})
	s.execute = func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	body, _ := json.Marshal(queryRequest{Query: query1, TimeoutMS: 20})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	if s.timeouts.Load() != 1 {
		t.Errorf("timeout counter = %d, want 1", s.timeouts.Load())
	}
}

// TestQueryBackpressure: with the admission limit saturated, the next
// request is rejected with 429 + Retry-After, and succeeds once the
// limit frees up.
func TestQueryBackpressure(t *testing.T) {
	s := testServer(t, config{maxInFlight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	realExec := s.execute
	s.execute = func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error) {
		close(entered)
		<-release
		return realExec(ctx, pq, o)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1})
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postQuery(t, ts, string(body))
		firstDone <- resp.StatusCode
	}()
	<-entered // the first request holds the only admission slot

	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.rejected.Load() != 1 {
		t.Errorf("rejected counter = %d, want 1", s.rejected.Load())
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("first request status = %d", code)
	}
	// The slot is free again: a fresh request is admitted.
	s.execute = realExec
	resp3, raw3 := postQuery(t, ts, string(body))
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("post-drain status = %d, body %s", resp3.StatusCode, raw3)
	}
}

// TestConcurrentClients: 16 clients hammer /query concurrently (run
// under -race by make serve-check); every response is byte-identical
// to the solo reference for its strategy.
func TestConcurrentClients(t *testing.T) {
	s := testServer(t, config{maxInFlight: 32})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	strategies := []string{"groupby", "direct", "direct-nested", "direct-batch", "replicating", "physical"}
	want := map[string]string{}
	for _, name := range strategies {
		body, _ := json.Marshal(queryRequest{Query: query1, Strategy: name})
		resp, raw := postQuery(t, ts, string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %s: status %d body %s", name, resp.StatusCode, raw)
		}
		want[name] = decodeQueryResponse(t, raw).Trees
	}

	const clients, iters = 16, 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := strategies[(c+i)%len(strategies)]
				body, _ := json.Marshal(queryRequest{Query: query1, Strategy: name, Parallelism: 1 + c%4})
				resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
				if err != nil {
					errs <- err
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d iter %d (%s): status %d", c, i, name, resp.StatusCode)
					return
				}
				if qr.Trees != want[name] {
					errs <- fmt.Errorf("client %d iter %d (%s): bytes differ from solo reference", c, i, name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStatsAndMetrics: the observability endpoints expose the plan
// cache and service counters.
func TestStatsAndMetrics(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1})
	for i := 0; i < 3; i++ {
		if resp, raw := postQuery(t, ts, string(body)); resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 2 {
		t.Errorf("plan cache stats = %+v, want 1 miss + 2 hits", st.Cache)
	}
	if st.Documents != 1 {
		t.Errorf("documents = %d", st.Documents)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"engine_plan_cache_hits 2", "engine_plan_cache_misses 1",
		"serve_requests 3", "serve_ok 3", "pool_fetches ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestTimeoutCapped: client-requested timeouts cannot exceed the
// configured maximum.
func TestTimeoutCapped(t *testing.T) {
	s := testServer(t, config{maxTimeout: 50 * time.Millisecond})
	s.execute = func(ctx context.Context, pq *engine.PreparedQuery, o engine.ExecOptions) (*engine.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	body, _ := json.Marshal(queryRequest{Query: query1, TimeoutMS: 60_000})
	start := time.Now()
	resp, _ := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cap not applied; request took %v", elapsed)
	}
}

// TestMethodNotAllowed: the read-only endpoints reject non-GET with
// 405 and an Allow header; /query allows GET and POST only.
func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for _, tc := range []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/metrics", "GET, HEAD"},
		{http.MethodDelete, "/metrics", "GET, HEAD"},
		{http.MethodPost, "/stats", "GET, HEAD"},
		{http.MethodPut, "/query", "GET, POST"},
		{http.MethodDelete, "/query", "GET, POST"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type = %q", tc.method, tc.path, ct)
		}
	}
}

// TestPrometheusExposition: /metrics serves a lint-clean Prometheus
// exposition with the right content type, at least one counter family,
// one gauge and one labeled histogram, and every response carries an
// X-Query-ID header.
func TestPrometheusExposition(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1})
	if resp, raw := postQuery(t, ts, string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ExpositionContentType)
	}
	if resp.Header.Get("X-Query-ID") == "" {
		t.Error("missing X-Query-ID header")
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sum, errs := obs.LintExposition(data)
	for _, e := range errs {
		t.Error(e)
	}
	if sum.Counters < 1 || sum.Gauges < 1 || sum.LabeledHistograms < 1 {
		t.Errorf("exposition coverage too thin: %v", sum)
	}
	for _, want := range []string{
		"# TYPE http_request_seconds histogram",
		`http_request_seconds_bucket{path="/query",le="+Inf"} 1`,
		"# TYPE engine_query_seconds histogram",
		`engine_strategy_total{strategy="groupby"} 1`,
		"# TYPE pool_hit_ratio gauge",
		"serve_in_flight ",
		"go_goroutines ",
		"exec_operator_seconds_bucket",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The terse rendering is still available for humans.
	tresp, err := http.Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	tdata, _ := io.ReadAll(tresp.Body)
	if ct := tresp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text Content-Type = %q", ct)
	}
	if !strings.Contains(string(tdata), "serve_requests 1") {
		t.Errorf("text rendering missing serve_requests:\n%s", tdata)
	}
}

// TestSlowQueryLog: with -slowquery configured, a query at or above
// the threshold emits exactly one structured log line whose query ID
// matches both the X-Query-ID response header and the root span of the
// dumped trace; a fast query emits none.
func TestSlowQueryLog(t *testing.T) {
	var logBuf syncBuffer
	s := testServer(t, config{
		slowQuery: time.Nanosecond, // every query is "slow"
		logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1, Strategy: "groupby"})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	qid := resp.Header.Get("X-Query-ID")
	if qid == "" {
		t.Fatal("missing X-Query-ID")
	}

	var slow []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparsable log line %q: %v", line, err)
		}
		if rec["msg"] == "slow query" {
			slow = append(slow, rec)
		}
	}
	if len(slow) != 1 {
		t.Fatalf("got %d slow-query lines, want exactly 1\nlog:\n%s", len(slow), logBuf.String())
	}
	rec := slow[0]
	if rec["qid"] != qid {
		t.Errorf("slow-query qid = %v, header qid = %q", rec["qid"], qid)
	}
	trace, _ := rec["trace"].(string)
	var root struct {
		Name     string `json:"name"`
		Children []any  `json:"children"`
	}
	if err := json.Unmarshal([]byte(trace), &root); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, trace)
	}
	if root.Name != qid {
		t.Errorf("trace root = %q, want query ID %q", root.Name, qid)
	}
	if len(root.Children) == 0 {
		t.Error("trace has no operator spans")
	}
	if rec["strategy"] != "groupby" || rec["query"] == "" {
		t.Errorf("slow-query line missing fields: %v", rec)
	}

	// Below threshold: no line. Raise the bar and re-query.
	logBuf.Reset()
	s.cfg.slowQuery = time.Hour
	if resp2, raw2 := postQuery(t, ts, string(body)); resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp2.StatusCode, raw2)
	}
	if got := logBuf.String(); strings.Contains(got, "slow query") {
		t.Errorf("fast query logged as slow:\n%s", got)
	}
}

// syncBuffer is a mutex-guarded strings.Builder for concurrent slog
// handlers.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuffer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.Reset()
}

// TestRequestLogAndGauges: the middleware logs every request with its
// query ID, and the in-flight gauge returns to zero when idle.
func TestRequestLogAndGauges(t *testing.T) {
	var logBuf syncBuffer
	s := testServer(t, config{logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	qid := resp.Header.Get("X-Query-ID")

	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(logBuf.String())), &rec); err != nil {
		t.Fatalf("request log not one JSON line: %v\n%s", err, logBuf.String())
	}
	if rec["msg"] != "request" || rec["qid"] != qid || rec["path"] != "/query" || rec["status"] != float64(200) {
		t.Errorf("request log line = %v", rec)
	}
	if got := s.inFlight.Value(); got != 0 {
		t.Errorf("in-flight gauge = %v after requests drained", got)
	}
	if got := s.draining.Value(); got != 0 {
		t.Errorf("draining gauge = %v before shutdown", got)
	}
	s.setDraining()
	if got := s.draining.Value(); got != 1 {
		t.Errorf("draining gauge = %v after setDraining", got)
	}
}

// TestQueryExplain: ?explain=1 (GET) and {"explain": true} (POST)
// attach the planner's report — plan choice, candidates, and operator
// estimates joined against the run's actuals — without changing the
// result bytes.
func TestQueryExplain(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1, Explain: true})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	qr := decodeQueryResponse(t, raw)
	if qr.Explain == nil {
		t.Fatal("explain=true returned no explain report")
	}
	if !qr.Explain.Executed {
		t.Error("explain report not marked executed")
	}
	if qr.Explain.Strategy != qr.Strategy {
		t.Errorf("explain strategy %q != response strategy %q", qr.Explain.Strategy, qr.Strategy)
	}
	if len(qr.Explain.Operators) == 0 {
		t.Error("explain report has no operator estimates")
	}
	for _, op := range qr.Explain.Operators {
		if op.ActualRows < 0 {
			t.Errorf("operator %q missing actual rows", op.Op)
		}
	}

	// Plain request: no report attached.
	plain, _ := json.Marshal(queryRequest{Query: query1})
	if _, raw := postQuery(t, ts, string(plain)); decodeQueryResponse(t, raw).Explain != nil {
		t.Error("explain report attached without being requested")
	}

	// GET form.
	u := ts.URL + "/query?explain=1&q=" + url.QueryEscape(query1)
	getResp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var getQR queryResponse
	if err := json.NewDecoder(getResp.Body).Decode(&getQR); err != nil {
		t.Fatal(err)
	}
	if getQR.Explain == nil || !getQR.Explain.Executed {
		t.Error("GET ?explain=1 returned no executed explain report")
	}
	if getQR.Trees != qr.Trees {
		t.Error("explain GET served different result bytes")
	}

	// Bad explain value is a 400.
	bad, err := http.Get(ts.URL + "/query?explain=sure&q=" + url.QueryEscape(query1))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad explain value: status = %d, want 400", bad.StatusCode)
	}
}
