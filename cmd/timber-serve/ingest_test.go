package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func doIngest(t *testing.T, ts *httptest.Server, method, params, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+"/ingest"+params, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestIngestLifecycle: a document POSTed through /ingest is immediately
// visible to /stats and queries, a duplicate name is a 409, DELETE
// removes it, and deleting a missing name is a 404.
func TestIngestLifecycle(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const doc = `<bib><article><author>Ingested Author</author><title>Ingested Title</title></article></bib>`
	resp, raw := doIngest(t, ts, http.MethodPost, "?name=extra.xml&sync=always", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d, body %s", resp.StatusCode, raw)
	}
	var ir ingestResponse
	if err := json.Unmarshal(raw, &ir); err != nil {
		t.Fatalf("bad receipt %s: %v", raw, err)
	}
	if ir.Name != "extra.xml" || ir.Nodes == 0 || ir.Epoch == 0 || ir.Sync != "always" {
		t.Errorf("receipt = %+v", ir)
	}

	// The catalog reflects the insert without a restart.
	docs := s.eng.DB().Documents()
	if len(docs) != 2 {
		t.Fatalf("documents after insert = %d, want 2", len(docs))
	}
	// ...and the query path sees the new author.
	body, _ := json.Marshal(queryRequest{Query: query1, Strategy: "groupby"})
	qresp, qraw := postQuery(t, ts, string(body))
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %s", qresp.StatusCode, qraw)
	}
	if qr := decodeQueryResponse(t, qraw); !strings.Contains(qr.Trees, "Ingested Author") {
		t.Errorf("query after ingest does not see the new document:\n%s", qr.Trees)
	}

	// Duplicate name: 409, catalog unchanged.
	resp, raw = doIngest(t, ts, http.MethodPost, "?name=extra.xml", doc)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate status = %d, body %s", resp.StatusCode, raw)
	}
	if got := len(s.eng.DB().Documents()); got != 2 {
		t.Errorf("documents after duplicate = %d, want 2", got)
	}

	// Delete it; the catalog and query results revert.
	resp, raw = doIngest(t, ts, http.MethodDelete, "?name=extra.xml", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d, body %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &ir); err != nil || !ir.Deleted {
		t.Errorf("delete receipt %s (err %v)", raw, err)
	}
	if got := len(s.eng.DB().Documents()); got != 1 {
		t.Errorf("documents after delete = %d, want 1", got)
	}
	qresp, qraw = postQuery(t, ts, string(body))
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", qresp.StatusCode)
	}
	if qr := decodeQueryResponse(t, qraw); strings.Contains(qr.Trees, "Ingested Author") {
		t.Error("query still sees the deleted document")
	}

	// Deleting a name that was never inserted: 404.
	resp, raw = doIngest(t, ts, http.MethodDelete, "?name=ghost.xml", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing-delete status = %d, body %s", resp.StatusCode, raw)
	}
}

// TestIngestBadRequest: parameter and body errors are 4xx with JSON
// error bodies, and unsupported methods get 405 + Allow.
func TestIngestBadRequest(t *testing.T) {
	s := testServer(t, config{})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		method, params, body string
		status               int
	}{
		"missing name": {http.MethodPost, "", "<a/>", http.StatusBadRequest},
		"bad sync":     {http.MethodPost, "?name=x.xml&sync=turbo", "<a/>", http.StatusBadRequest},
		"bad xml":      {http.MethodPost, "?name=x.xml", "<a><unclosed>", http.StatusBadRequest},
		"get method":   {http.MethodGet, "?name=x.xml", "", http.StatusMethodNotAllowed},
	} {
		resp, raw := doIngest(t, ts, tc.method, tc.params, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", name, resp.StatusCode, tc.status, raw)
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %s", name, raw)
		}
	}
	if got := resp405Allow(t, ts); got != "POST, DELETE" {
		t.Errorf("Allow = %q, want \"POST, DELETE\"", got)
	}
	if got := len(s.eng.DB().Documents()); got != 1 {
		t.Errorf("bad requests changed the catalog: %d documents", got)
	}
}

func resp405Allow(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/ingest?name=x.xml")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.Header.Get("Allow")
}

// TestIngestConcurrentWithQueries: writers stream documents in while
// clients query; every query runs on one pinned snapshot, so each
// response is byte-identical to the pre-ingest reference (the inserted
// documents contain no tags the query pattern matches). Run under
// -race by make serve-check.
func TestIngestConcurrentWithQueries(t *testing.T) {
	s := testServer(t, config{maxInFlight: 64})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: query1, Strategy: "groupby"})
	resp, raw := postQuery(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status = %d, body %s", resp.StatusCode, raw)
	}
	want := decodeQueryResponse(t, raw).Trees

	const writers, docsPerWriter, readers, queries = 2, 8, 4, 6
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				name := fmt.Sprintf("?name=w%d-%d.xml&sync=group", w, i)
				doc := fmt.Sprintf(`<sidecar><payload n="%d">writer %d</payload></sidecar>`, i, w)
				resp, raw := doIngest(t, ts, http.MethodPost, name, doc)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d doc %d: status %d body %s", w, i, resp.StatusCode, raw)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				body, _ := json.Marshal(queryRequest{Query: query1, Strategy: "groupby", Parallelism: 1 + r%4})
				resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
				if err != nil {
					errs <- err
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader %d iter %d: status %d", r, i, resp.StatusCode)
					return
				}
				if qr.Trees != want {
					errs <- fmt.Errorf("reader %d iter %d: result differs from quiesced reference under concurrent ingest", r, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := len(s.eng.DB().Documents()); got != 1+writers*docsPerWriter {
		t.Errorf("documents after concurrent ingest = %d, want %d", got, 1+writers*docsPerWriter)
	}
	// The WAL counters moved: every commit appended and fsynced.
	ws := s.eng.DB().WALStats()
	if ws.Commits < uint64(writers*docsPerWriter) {
		t.Errorf("wal commits = %d, want >= %d", ws.Commits, writers*docsPerWriter)
	}
}
