package main

import (
	"errors"
	"io"
	"net/http"
	"time"

	"timber/internal/storage"
	"timber/internal/xmltree"
)

// maxIngestBytes bounds an /ingest request body; a document is parsed
// in memory before it is stored.
const maxIngestBytes = 64 << 20

// ingestResponse is the /ingest success body.
type ingestResponse struct {
	// Name and DocID identify the document in the catalog.
	Name  string `json:"name"`
	DocID uint32 `json:"doc_id,omitempty"`
	// Nodes is the stored node count (insert only).
	Nodes uint64 `json:"nodes,omitempty"`
	// Epoch is the committed state's epoch after this write; a snapshot
	// taken at or after it sees the change.
	Epoch uint64 `json:"epoch"`
	// Sync echoes the durability the write ran with.
	Sync      string  `json:"sync"`
	Deleted   bool    `json:"deleted,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleIngest is the durable write endpoint:
//
//	POST   /ingest?name=NAME[&sync=always|group|none]   body: XML document
//	DELETE /ingest?name=NAME[&sync=always|group|none]
//
// Writes run under the same admission semaphore as queries — a full
// service sheds ingest load with 429 just like query load — and the
// sync parameter selects the WAL fsync policy per request (default:
// the database's configured policy; "none" acknowledges before fsync
// and may lose the tail of acknowledged writes in a crash, never
// consistency).
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	if r.Method != http.MethodPost && r.Method != http.MethodDelete {
		s.badReqs.Inc()
		w.Header().Set("Allow", "POST, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		s.badReqs.Inc()
		writeError(w, http.StatusBadRequest, "missing name (POST /ingest?name=doc.xml)")
		return
	}
	pol, err := storage.ParseSyncPolicy(q.Get("sync"))
	if err != nil {
		s.badReqs.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server at capacity (%d requests in flight)", s.cfg.maxInFlight)
			return
		}
	}

	db := s.eng.DB()
	start := time.Now()
	switch r.Method {
	case http.MethodPost:
		root, err := xmltree.Parse(io.LimitReader(r.Body, maxIngestBytes))
		if err != nil {
			s.badReqs.Inc()
			writeError(w, http.StatusBadRequest, "parse: %v", err)
			return
		}
		info, err := db.InsertDocument(name, root, pol)
		if err != nil {
			if errors.Is(err, storage.ErrDuplicateDocument) {
				s.badReqs.Inc()
				writeError(w, http.StatusConflict, "%v", err)
				return
			}
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.okCount.Inc()
		writeJSON(w, http.StatusOK, ingestResponse{
			Name:      name,
			DocID:     uint32(info.ID),
			Nodes:     info.NodeCount,
			Epoch:     db.Epoch(),
			Sync:      resolvedPolicy(db, pol),
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		})
	case http.MethodDelete:
		if err := db.DeleteDocument(name, pol); err != nil {
			if _, ok := db.DocumentByName(name); !ok {
				s.badReqs.Inc()
				writeError(w, http.StatusNotFound, "%v", err)
				return
			}
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.okCount.Inc()
		writeJSON(w, http.StatusOK, ingestResponse{
			Name:      name,
			Deleted:   true,
			Epoch:     db.Epoch(),
			Sync:      resolvedPolicy(db, pol),
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
}

// resolvedPolicy names the sync policy a write actually used, for the
// response body.
func resolvedPolicy(db *storage.DB, pol storage.SyncPolicy) string {
	if pol == storage.SyncDefault {
		pol = db.DefaultSyncPolicy()
	}
	return pol.String()
}
