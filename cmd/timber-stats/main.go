// Command timber-stats inspects a timber database file: the document
// catalog, the distinct tags with their posting counts, and the storage
// footprint. It is the metadata manager's window for operators.
//
// Usage:
//
//	timber-stats -db bib.timber [-tags]
package main

import (
	"flag"
	"fmt"
	"os"

	"timber/internal/storage"
)

func main() {
	dbPath := flag.String("db", "timber.db", "database file")
	showTags := flag.Bool("tags", true, "list tags with posting counts")
	flag.Parse()
	if err := run(*dbPath, *showTags); err != nil {
		fmt.Fprintln(os.Stderr, "timber-stats:", err)
		os.Exit(1)
	}
}

func run(dbPath string, showTags bool) (err error) {
	db, err := storage.Open(dbPath, storage.Options{})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	fmt.Printf("database: %s\n", dbPath)
	fmt.Printf("pages:    %d (%.1f MiB at 8 KiB)\n", db.NumPages(), float64(db.NumPages())*8/1024)
	fmt.Printf("value index: %v\n\n", db.HasValueIndex())

	docs := db.Documents()
	fmt.Printf("documents (%d):\n", len(docs))
	var totalNodes uint64
	for _, d := range docs {
		fmt.Printf("  %3d  %-30s %12d nodes\n", d.ID, d.Name, d.NodeCount)
		totalNodes += d.NodeCount
	}
	fmt.Printf("  total %d nodes\n", totalNodes)

	if !showTags {
		return nil
	}
	tags, err := db.Tags()
	if err != nil {
		return err
	}
	fmt.Printf("\ntags (%d):\n", len(tags))
	for _, tag := range tags {
		posts, err := db.TagPostings(tag)
		if err != nil {
			return err
		}
		fmt.Printf("  %-24s %12d\n", tag, len(posts))
	}
	return nil
}
