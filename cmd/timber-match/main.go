// Command timber-match evaluates a pattern tree against a timber
// database and prints the witness bindings — the raw Sec. 5.2 machinery
// behind selection and grouping, exposed for exploration.
//
// The pattern uses the paper's figure notation (see pattern.ParseTree):
//
//	timber-match -db bib.timber -p '
//	$1 [tag=article]
//	  pc $2 [tag=title & content~"*Transaction*"]
//	  pc $3 [tag=author]'
//
// Each witness prints one line per bound label with the node identifier
// (doc:start), tag and content.
//
// -matcher selects the matching algorithm: auto (holistic when the
// pattern qualifies; default), binary (cascaded binary structural
// joins), or twig (the holistic twig join). The witnesses are
// byte-identical either way; the printed access counters show how the
// two algorithms differ in work.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"timber/internal/match"
	"timber/internal/pattern"
	"timber/internal/storage"
)

func main() {
	dbPath := flag.String("db", "timber.db", "database file")
	patSrc := flag.String("p", "", "pattern tree (figure notation)")
	patFile := flag.String("f", "", "read the pattern from this file")
	limit := flag.Int("limit", 20, "maximum witnesses to print (0 = all)")
	matcher := flag.String("matcher", "auto", "matching algorithm: auto, binary, twig")
	flag.Parse()

	src := *patSrc
	if *patFile != "" {
		b, err := os.ReadFile(*patFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timber-match:", err)
			os.Exit(1)
		}
		src = string(b)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "timber-match: pass a pattern via -p or -f")
		os.Exit(2)
	}
	if err := run(*dbPath, src, *matcher, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "timber-match:", err)
		os.Exit(1)
	}
}

func run(dbPath, src, matcher string, limit int) (err error) {
	pt, err := pattern.ParseTree(src)
	if err != nil {
		return err
	}
	kind, err := match.ParseMatcher(matcher)
	if err != nil {
		return err
	}
	fmt.Print(pt.String())

	db, err := storage.Open(dbPath, storage.Options{})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	// Ctrl-C abandons the match promptly instead of finishing the scan.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	witnesses, stats, err := match.MatchKindObs(ctx, db, pt, kind, 0, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d witnesses via the %s matcher (%d index candidates, %d postings scanned, %d intermediate bindings, %d record fetches for residual predicates)\n\n",
		stats.Witnesses, stats.Matcher, stats.Candidates, stats.PostingsScanned, stats.IntermediateBindings, stats.RecordFilterFetches)
	for i, w := range witnesses {
		if limit > 0 && i >= limit {
			fmt.Printf("... %d more\n", len(witnesses)-limit)
			break
		}
		fmt.Printf("witness %d:\n", i+1)
		for _, lbl := range pt.Labels() {
			post := w[lbl]
			rec, err := db.GetNodeAt(post.RID)
			if err != nil {
				return err
			}
			content := rec.Content
			if len(content) > 48 {
				content = content[:45] + "..."
			}
			fmt.Printf("  %-4s -> %-10s %-12s %q\n", lbl, post.ID(), rec.Tag, content)
		}
	}
	return nil
}
