// Command timber-query runs an XQuery-subset query against a timber
// database: it parses the query, prints the naive TAX plan and (when
// the grouping idiom is detected) the GROUPBY rewrite, executes it, and
// prints the result trees as XML.
//
// Usage:
//
//	timber-query -db bib.timber 'FOR $a IN distinct-values(...) ...'
//	timber-query -db bib.timber -f query.xq -plan groupby
//
// -plan selects the execution strategy: logical (reference in-memory
// evaluation), physical (generic index-accelerated evaluation of any
// translatable query), direct (the naive plan with materialized
// intermediates), or groupby (identifier processing; the default when
// the rewrite applies).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timber/internal/exec"
	"timber/internal/opt"
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

func main() {
	dbPath := flag.String("db", "timber.db", "database file")
	queryFile := flag.String("f", "", "read the query from this file")
	strategy := flag.String("plan", "groupby", "execution strategy: logical, physical, direct, groupby")
	poolMB := flag.Int("poolmb", 32, "buffer pool size in MiB")
	parallel := flag.Int("parallel", 0, "worker bound for the physical executors (0 = GOMAXPROCS, 1 = sequential)")
	showPlans := flag.Bool("plans", true, "print the naive and rewritten plans")
	quiet := flag.Bool("q", false, "suppress result trees (print timing only)")
	flag.Parse()

	query := ""
	switch {
	case *queryFile != "":
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timber-query:", err)
			os.Exit(1)
		}
		query = string(b)
	case flag.NArg() == 1:
		query = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "timber-query: pass the query as the single argument or via -f")
		os.Exit(2)
	}

	if err := run(*dbPath, query, *strategy, *poolMB, *parallel, *showPlans, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "timber-query:", err)
		os.Exit(1)
	}
}

func run(dbPath, query, strategy string, poolMB, parallel int, showPlans, quiet bool) error {
	ast, err := xq.Parse(query)
	if err != nil {
		return err
	}
	naive, err := plan.Translate(ast)
	if err != nil {
		return err
	}
	rewritten, applied, err := opt.Rewrite(naive)
	if err != nil {
		return err
	}
	if showPlans {
		fmt.Println("--- naive plan (Sec. 4.1) ---")
		fmt.Print(plan.Format(naive))
		if applied {
			fmt.Println("--- GROUPBY rewrite (Sec. 4.1 Phase 2) ---")
			fmt.Print(plan.Format(rewritten))
		} else {
			fmt.Println("--- grouping idiom not detected; no rewrite ---")
		}
	}

	db, err := storage.Open(dbPath, storage.Options{PoolPages: poolMB * 1024 * 1024 / 8192})
	if err != nil {
		return err
	}
	defer db.Close()

	start := time.Now()
	var trees []*xmltree.Node
	switch strategy {
	case "logical":
		out, err := exec.ExecLogical(db, naive)
		if err != nil {
			return err
		}
		trees = out.Trees
	case "physical":
		// Generic index-accelerated evaluation; prefers the rewritten
		// plan when the grouping idiom was detected.
		op := naive
		if applied {
			op = rewritten
		}
		out, err := exec.ExecPhysicalPar(db, op, parallel)
		if err != nil {
			return err
		}
		trees = out.Trees
	case "direct", "groupby":
		if !applied {
			return fmt.Errorf("physical strategy %q needs the grouping rewrite; use -plan logical", strategy)
		}
		spec, err := exec.SpecFromPlan(rewritten)
		if err != nil {
			return err
		}
		spec.Parallelism = parallel
		var res *exec.Result
		if strategy == "direct" {
			res, err = exec.DirectMaterialized(db, spec)
		} else {
			res, err = exec.GroupByExec(db, spec)
		}
		if err != nil {
			return err
		}
		trees = res.Trees
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	elapsed := time.Since(start)

	if !quiet {
		for _, tr := range trees {
			if err := xmltree.Serialize(os.Stdout, tr); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "%d result trees in %v (%s strategy); pool: %v\n",
		len(trees), elapsed.Round(time.Millisecond), strategy, db.Stats())
	return nil
}
