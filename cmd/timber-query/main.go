// Command timber-query runs an XQuery-subset query against a timber
// database: it parses the query, prints the naive TAX plan and (when
// the grouping idiom is detected) the GROUPBY rewrite, executes it, and
// prints the result trees as XML.
//
// Usage:
//
//	timber-query -db bib.timber 'FOR $a IN distinct-values(...) ...'
//	timber-query -db bib.timber -f query.xq -plan groupby
//	timber-query -db bib.timber -explain -f query.xq
//
// -plan selects the execution strategy (exec.ParseStrategy names).
// The default, auto, hands the choice to the cost-based planner: the
// engine costs the candidate plans against the database's cardinality
// statistics and runs the cheapest. The explicit overrides are
// logical (reference in-memory evaluation), physical (generic
// index-accelerated evaluation of any translatable query), direct
// (the naive plan with materialized intermediates), direct-nested,
// direct-batch, groupby (streaming identifier processing),
// groupby-mat (the materializing groupby reference), and replicating.
// Strategies that need the grouping rewrite fall back to the physical
// plan, with a note, when the idiom is not detected.
//
// -explain prints the planner's EXPLAIN report to stderr after the
// run: the chosen strategy, the costed alternatives, and per-operator
// cardinality estimates joined against the actual row counts from the
// execution trace. -explainfile writes the same report as JSON. This
// subsumes the older -trace text output for plan-level questions;
// -trace remains for the counter-exact span tree (buffer-pool and
// index deltas per operator) and cannot be combined with -explain,
// which owns the run's tracer.
//
// -matcher selects the pattern-matching algorithm the physical plan's
// indexed selections run: auto (the cost-based planner chooses;
// default), binary (cascaded binary structural joins), or twig (the
// holistic twig join streaming tag-index cursors). Results are
// byte-identical across matchers; only the index access pattern
// changes. EXPLAIN reports the planner's matcher choice and expected
// join order.
//
// -maxmem caps, in bytes, the output content the streaming executor's
// late-materialize sink may fetch; a query that would exceed the cap
// fails cleanly — no partial output is printed.
//
// -trace prints an EXPLAIN-ANALYZE-style per-operator tree to stderr:
// one span per operator phase with wall time, buffer-pool deltas
// (fetches / hits / physical I/O), index-traversal deltas and operator
// counters. -tracefile writes the same tree as JSON. Either flag also
// verifies the exactness invariant — the span deltas must sum to the
// database's global counters — and fails the command if they do not.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"timber/internal/engine"
	"timber/internal/exec"
	"timber/internal/match"
	"timber/internal/obs"
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/xmltree"
)

func main() {
	dbPath := flag.String("db", "timber.db", "database file")
	queryFile := flag.String("f", "", "read the query from this file")
	strategy := flag.String("plan", "auto", "execution strategy: auto (cost-based planner; default), logical, physical, direct, direct-nested, direct-batch, groupby, groupby-mat, replicating")
	matcher := flag.String("matcher", "auto", "pattern matcher for the physical plan: auto (planner decides; default), binary, twig")
	poolMB := flag.Int("poolmb", 32, "buffer pool size in MiB")
	parallel := flag.Int("parallel", 0, "worker bound for the physical executors (0 = GOMAXPROCS, 1 = sequential)")
	maxMem := flag.Int64("maxmem", 0, "cap, in bytes, on the output content the streaming executor materializes; the query fails cleanly (no partial output) past it (0 = unlimited)")
	showPlans := flag.Bool("plans", true, "print the naive and rewritten plans")
	quiet := flag.Bool("q", false, "suppress result trees (print timing only)")
	explain := flag.Bool("explain", false, "print the planner's EXPLAIN report (plan choice, estimates vs actuals) to stderr")
	explainFile := flag.String("explainfile", "", "write the EXPLAIN report as JSON to this file")
	trace := flag.Bool("trace", false, "print a per-operator EXPLAIN ANALYZE tree to stderr")
	traceFile := flag.String("tracefile", "", "write the per-operator trace as JSON to this file")
	metricsFile := flag.String("metricsfile", "", "write the engine's metric registry as Prometheus text exposition to this file after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	query := ""
	switch {
	case *queryFile != "":
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timber-query:", err)
			os.Exit(1)
		}
		query = string(b)
	case flag.NArg() == 1:
		query = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "timber-query: pass the query as the single argument or via -f")
		os.Exit(2)
	}

	servePprof(*pprofAddr)
	// run owns the database lifecycle: by the time it returns, the
	// deferred Close has executed (and its error has been folded into
	// run's), so exiting here never skips cleanup.
	if err := run(*dbPath, query, *strategy, *matcher, *poolMB, *parallel, *maxMem, *showPlans, *quiet, *explain, *explainFile, *trace, *traceFile, *metricsFile); err != nil {
		fmt.Fprintln(os.Stderr, "timber-query:", err)
		os.Exit(1)
	}
}

// servePprof starts the opt-in pprof listener. Failures to serve are
// reported but never fail the query.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "timber-query: pprof:", err)
		}
	}()
}

func run(dbPath, query, strategy, matcher string, poolMB, parallel int, maxMem int64, showPlans, quiet, explain bool, explainFile string, trace bool, traceFile, metricsFile string) (err error) {
	strat, err := exec.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	mkind, err := match.ParseMatcher(matcher)
	if err != nil {
		return err
	}
	wantExplain := explain || explainFile != ""
	if wantExplain && (trace || traceFile != "") {
		return fmt.Errorf("-explain owns the run's tracer; drop -trace/-tracefile or run them separately")
	}

	db, err := storage.Open(dbPath, storage.Options{PoolPages: poolMB * 1024 * 1024 / 8192})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	// Prepare through the engine facade: the same parse + rewrite +
	// cache pipeline timber-serve runs, so one query gives the same
	// bytes here and over HTTP.
	eng := engine.New(db, engine.Options{Parallelism: parallel})
	pq, err := eng.Prepare(query)
	if err != nil {
		return err
	}
	if showPlans {
		fmt.Println("--- naive plan (Sec. 4.1) ---")
		fmt.Print(plan.Format(pq.Naive))
		if pq.Applied {
			fmt.Println("--- GROUPBY rewrite (Sec. 4.1 Phase 2) ---")
			fmt.Print(plan.Format(pq.Rewritten))
		} else {
			fmt.Println("--- grouping idiom not detected; no rewrite ---")
		}
	}

	// The tracer snapshots the global counters at span boundaries, so
	// they must start from zero for the exactness invariant to hold.
	var tr *obs.Tracer
	if trace || traceFile != "" {
		db.ResetStats()
		tr = db.NewTracer("query")
	}

	// Ctrl-C cancels the run promptly instead of waiting it out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	opts := engine.ExecOptions{Strategy: strat, Matcher: mkind, Parallelism: parallel, MaxMaterializeBytes: maxMem, Tracer: tr}
	var res *engine.Result
	var report *engine.Explain
	if wantExplain {
		report, res, err = pq.ExplainExecute(ctx, opts)
	} else {
		res, err = pq.Execute(ctx, opts)
	}
	if err != nil {
		// Nothing has been printed yet: a run that exceeds -maxmem (or
		// fails any other way) produces no partial output.
		return err
	}
	elapsed := time.Since(start)
	trees := res.Trees
	if strat != exec.StrategyAuto && res.Strategy != strat {
		fmt.Fprintf(os.Stderr, "note: grouping idiom not detected; ran the %s plan instead of %s\n", res.Strategy, strat)
	}

	if report != nil {
		if explain {
			fmt.Fprintln(os.Stderr, "--- EXPLAIN ---")
			fmt.Fprint(os.Stderr, report.Text())
		}
		if explainFile != "" {
			raw, jerr := report.JSON()
			if jerr != nil {
				return jerr
			}
			if werr := os.WriteFile(explainFile, append(raw, '\n'), 0o644); werr != nil {
				return werr
			}
			fmt.Fprintln(os.Stderr, "explain report written to", explainFile)
		}
	}

	if tr != nil {
		data := tr.Finish()
		// Exactness invariant: the per-span deltas must telescope to
		// the database's global counters. A violation means the trace
		// is lying about where the work went — fail loudly so CI
		// catches instrumentation drift.
		if verr := data.Verify(db.TraceCounters()); verr != nil {
			return fmt.Errorf("trace verification: %w", verr)
		}
		if trace {
			fmt.Fprint(os.Stderr, data.Text())
		}
		if traceFile != "" {
			if werr := data.WriteJSONFile(traceFile); werr != nil {
				return werr
			}
			fmt.Fprintln(os.Stderr, "trace written to", traceFile)
		}
	}

	// The one-shot analogue of scraping a live timber-serve: the same
	// registry families (engine latency histograms, strategy counters,
	// pool gauges), frozen after this run.
	if metricsFile != "" {
		var b strings.Builder
		if werr := eng.Registry().WritePrometheus(&b); werr != nil {
			return werr
		}
		if werr := os.WriteFile(metricsFile, []byte(b.String()), 0o644); werr != nil {
			return werr
		}
		fmt.Fprintln(os.Stderr, "metrics written to", metricsFile)
	}

	if !quiet {
		for _, tr := range trees {
			if err := xmltree.Serialize(os.Stdout, tr); err != nil {
				return err
			}
		}
	}
	strategyNote := res.Strategy.String() + " strategy"
	if res.Strategy == exec.StrategyPhysical {
		strategyNote += ", " + res.Matcher.String() + " matcher"
	}
	fmt.Fprintf(os.Stderr, "%d result trees in %v (%s); pool: %v\n",
		len(trees), elapsed.Round(time.Millisecond), strategyNote, db.Stats())
	if info, ierr := db.SizeInfo(); ierr == nil {
		size := fmt.Sprintf("size: %d bytes on disk (%d pages: %d heap, %d index)",
			info.TotalBytes, info.TotalPages, info.HeapPages, info.IndexPages)
		if info.Codec != "" {
			size += fmt.Sprintf("; page codec %s", info.Codec)
			if st := db.Stats(); st.UncompressedBytes > 0 {
				size += fmt.Sprintf(", write ratio %.2f", st.CompressionRatio())
			}
		}
		if info.Compact {
			size += "; compact format v3"
		}
		fmt.Fprintln(os.Stderr, size)
	}
	return nil
}
