// Authorpubs: the paper's Sec. 6 experiment in miniature — generate a
// synthetic DBLP-Journals database, run the group-by-author query with
// every physical strategy, and print the comparison table. This is the
// workload the paper's introduction motivates (XQuery use case
// 1.1.9.4 Q4).
//
//	go run ./examples/authorpubs [-articles N]
package main

import (
	"flag"
	"fmt"
	"log"

	"timber/internal/bench"
	"timber/internal/dblpgen"
)

func main() {
	articles := flag.Int("articles", 5000, "articles in the synthetic database")
	flag.Parse()
	if err := run(*articles); err != nil {
		log.Fatal(err)
	}
}

func run(articles int) error {
	db, err := bench.SetupDB(articles / 40) // pool ≈ a third of the data
	if err != nil {
		return err
	}
	defer db.Close()
	stats, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: articles, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("database: %v\n\n", stats)

	fmt.Println("Query 1 — titles per author (paper E1):")
	titles, err := bench.BuildQuery(bench.Query1Text)
	if err != nil {
		return err
	}
	ms, err := bench.RunExperiment(db, titles)
	if err != nil {
		return err
	}
	fmt.Print(bench.Table(ms, bench.StratDirectNaive))

	fmt.Println("\nCount variant (paper E2):")
	count, err := bench.BuildQuery(bench.QueryCountText)
	if err != nil {
		return err
	}
	ms, err = bench.RunExperiment(db, count)
	if err != nil {
		return err
	}
	fmt.Print(bench.Table(ms, bench.StratDirectNaive))

	fmt.Println("\nThe groupby (identifier) plan populates only the grouping")
	fmt.Println("values plus what the output needs (Sec. 5.3); the naive direct")
	fmt.Println("plan replicates full article subtrees through storage (Fig. 8).")
	return nil
}
