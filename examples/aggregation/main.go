// Aggregation: the Sec. 4.3 aggregation operator in isolation —
// grouping and aggregation are separate TAX operators, so summary
// values can be attached anywhere in a tree, not only on top of a
// grouping. The example counts, sums and bounds values over the
// Figure 6 sample bibliography and then combines GROUPBY with COUNT to
// answer the Sec. 6 count query algebraically.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"
	"os"

	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	collection := tax.NewCollection(paperdata.SampleDatabase())

	// A_{authorCount=COUNT($2), afterLastChild($1)}: annotate the
	// document root with its author-element count.
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	docAuthors := pattern.MustTree(root)
	annotated := tax.Aggregate(collection, docAuthors, tax.AggSpec{
		Fn: tax.Count, SrcLabel: "$2", NewTag: "authorCount",
		AnchorLabel: "$1", Place: tax.AfterLastChild,
	})
	fmt.Println("=== COUNT of author elements, attached to the root ===")
	fmt.Println(annotated.Trees[0].Child("authorCount"))

	// MIN/MAX of publication years, inserted as siblings of the first
	// article (the precedes/follows placements of Sec. 4.3).
	yr := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	art := yr.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	art.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "year"}))
	years := pattern.MustTree(yr)
	for _, spec := range []tax.AggSpec{
		{Fn: tax.Min, SrcLabel: "$3", NewTag: "earliest", AnchorLabel: "$2", Place: tax.Precedes},
		{Fn: tax.Max, SrcLabel: "$3", NewTag: "latest", AnchorLabel: "$2", Place: tax.Follows},
		{Fn: tax.Avg, SrcLabel: "$3", NewTag: "meanYear", AnchorLabel: "$1", Place: tax.AfterLastChild},
	} {
		out := tax.Aggregate(collection, years, spec)
		n := out.Trees[0].FindFirst(spec.NewTag)
		fmt.Printf("%s(%s) = %s (placed %v of %s's match)\n",
			spec.Fn, "year", n.Content, spec.Place, spec.AnchorLabel)
	}

	// Grouping followed by aggregation: count articles per author —
	// grouping restructures, aggregation summarizes, and because they
	// are separate operators the group members remain available.
	articles := splitArticles()
	grouped := tax.GroupBy(articles, paperdata.Query1GroupByPattern(),
		[]tax.BasisItem{{Label: "$2"}}, nil)
	gRoot := pattern.NewNode("$1", pattern.TagEq{Tag: tax.GroupRootTag})
	sub := gRoot.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: tax.GroupSubrootTag}))
	sub.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "article"}))
	perGroup := pattern.MustTree(gRoot)
	counted := tax.Aggregate(grouped, perGroup, tax.AggSpec{
		Fn: tax.Count, SrcLabel: "$3", NewTag: "count",
		AnchorLabel: "$1", Place: tax.AfterLastChild,
	})
	fmt.Println("\n=== articles per author (GROUPBY + COUNT) ===")
	for _, g := range counted.Trees {
		author := g.Children[0].Children[0].Content
		count := g.Child("count").Content
		fmt.Printf("  %-6s %s article(s)\n", author, count)
	}

	// The full group tree of the first author, for the curious.
	fmt.Println("\n=== the first group tree (Sec. 3 output shape) ===")
	return xmltree.Serialize(os.Stdout, counted.Trees[0])
}

// splitArticles projects the sample database into its article trees
// (the Figure 9 collection) so grouping operates on one tree per
// article.
func splitArticles() tax.Collection {
	c := tax.NewCollection(paperdata.SampleDatabase())
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	pt := pattern.MustTree(root)
	return tax.Project(c, pt, []tax.Item{tax.LS("$2")})
}
