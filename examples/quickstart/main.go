// Quickstart: the paper's running example end to end on the Figure 6
// sample database — parse Query 1, translate it to the naive TAX plan,
// rewrite it around GROUPBY, execute both, and show they agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"timber/internal/exec"
	"timber/internal/opt"
	"timber/internal/paperdata"
	"timber/internal/plan"
	"timber/internal/storage"
	"timber/internal/xmltree"
	"timber/internal/xq"
)

const query1 = `
FOR $a IN distinct-values(document("bib.xml")//author)
RETURN
<authorpubs>
  {$a}
  {
    FOR $b IN document("bib.xml")//article
    WHERE $a = $b/author
    RETURN $b/title
  }
</authorpubs>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Load the Figure 6 sample bibliography into a fresh database.
	db, err := storage.CreateTemp(storage.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	sample := paperdata.SampleDatabase()
	if _, err := db.LoadDocument("bib.xml", sample); err != nil {
		return err
	}
	fmt.Println("=== the Figure 6 sample database ===")
	xmltree.Serialize(os.Stdout, sample)

	// 2. Parse and translate Query 1 (Sec. 4.1 naive parsing).
	ast, err := xq.Parse(query1)
	if err != nil {
		return err
	}
	naive, err := plan.Translate(ast)
	if err != nil {
		return err
	}
	fmt.Println("\n=== naive TAX plan (Figure 4 pattern trees inside) ===")
	fmt.Print(plan.Format(naive))

	// 3. Detect the grouping idiom and rewrite (Sec. 4.1 Phases 1–2).
	rewritten, applied, err := opt.Rewrite(naive)
	if err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("rewrite unexpectedly did not apply")
	}
	fmt.Println("=== GROUPBY plan (Figure 5) ===")
	fmt.Print(plan.Format(rewritten))

	// 4. Execute both plans physically and print the answers.
	spec, err := exec.SpecFromPlan(rewritten)
	if err != nil {
		return err
	}
	spec.Strategy = exec.StrategyDirect
	direct, err := exec.Run(db, spec, exec.Options{})
	if err != nil {
		return err
	}
	spec.Strategy = exec.StrategyGroupBy
	group, err := exec.Run(db, spec, exec.Options{})
	if err != nil {
		return err
	}
	fmt.Println("=== result (direct plan order: first author occurrence) ===")
	for _, tr := range direct.Trees {
		xmltree.Serialize(os.Stdout, tr)
	}
	fmt.Println("=== result (groupby plan order: sorted by author) ===")
	for _, tr := range group.Trees {
		xmltree.Serialize(os.Stdout, tr)
	}
	fmt.Printf("\ndirect plan:  %d value look-ups, %d locator probes\n",
		direct.Stats.ValueLookups, direct.Stats.LocatorProbes)
	fmt.Printf("groupby plan: %d value look-ups, %d locator probes (identifier processing)\n",
		group.Stats.ValueLookups, group.Stats.LocatorProbes)
	return nil
}
