// Restructuring: grouping as a pure restructuring operator (Sec. 3 —
// "grouping has a natural direct role to play for restructuring data
// trees, orthogonally to aggregation"). The example reproduces the
// introduction's institution queries: group articles by the authors'
// institutions, then build the two-level institution/author grouping by
// composing GROUPBY with itself, and finally show the Figure 3 ordered
// grouping (descending titles).
//
//	go run ./examples/restructuring
package main

import (
	"fmt"
	"log"
	"os"

	"timber/internal/dblpgen"
	"timber/internal/paperdata"
	"timber/internal/pattern"
	"timber/internal/tax"
	"timber/internal/xmltree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small bibliography with institutions nested inside authors.
	doc, _ := dblpgen.Generate(dblpgen.Config{
		Articles: 12, Seed: 5, WithInstitutions: true, Institutions: 3, AuthorPool: 6,
	})
	articles := splitArticles(doc)
	fmt.Printf("collection: %d article trees\n\n", articles.Len())

	// Group by institution ($3 = author/institution content).
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "article"})
	au := root.AddChild(pattern.Child, pattern.NewNode("$2", pattern.TagEq{Tag: "author"}))
	au.AddChild(pattern.Child, pattern.NewNode("$3", pattern.TagEq{Tag: "institution"}))
	byInst := pattern.MustTree(root)

	groups := tax.GroupBy(articles, byInst, []tax.BasisItem{{Label: "$3"}}, nil)
	fmt.Println("=== articles grouped by institution ===")
	for _, g := range groups.Trees {
		inst := g.Children[0].Children[0].Content
		fmt.Printf("  %-14s %d membership(s)\n", inst, len(g.Children[1].Children))
	}

	// Two-level grouping: GROUPBY composes with itself because the
	// algebra is closed — group each institution's members by author.
	fmt.Println("\n=== institution -> author -> titles (nested grouping) ===")
	for _, g := range groups.Trees {
		inst := g.Children[0].Children[0].Content
		fmt.Printf("  %s\n", inst)
		members := tax.Collection{Trees: cloneAll(g.Children[1].Children)}
		members.Renumber()
		inner := tax.GroupBy(members, paperdata.Query1GroupByPattern(),
			[]tax.BasisItem{{Label: "$2"}}, nil)
		for _, ag := range inner.Trees {
			author := ag.Children[0].Children[0].Content
			fmt.Printf("    %s\n", author)
			for _, m := range ag.Children[1].Children {
				if t := m.Child("title"); t != nil {
					fmt.Printf("      %s\n", t.Content)
				}
			}
		}
	}

	// Figure 3: grouping the Figure 2 witness trees by author, each
	// group ordered by DESCENDING title.
	fmt.Println("\n=== Figure 3: groups ordered by DESCENDING title ===")
	pt := paperdata.Figure1Pattern()
	witnesses := tax.Select(tax.NewCollection(paperdata.TransactionArticles()), pt, nil)
	fig3 := tax.GroupBy(witnesses, pt,
		[]tax.BasisItem{{Label: "$3"}},
		[]tax.OrderItem{{Direction: tax.Descending, Label: "$2"}})
	return serializeAll(fig3.Trees)
}

func splitArticles(doc *xmltree.Node) tax.Collection {
	c := tax.NewCollection(doc)
	root := pattern.NewNode("$1", pattern.TagEq{Tag: "doc_root"})
	root.AddChild(pattern.Descendant, pattern.NewNode("$2", pattern.TagEq{Tag: "article"}))
	return tax.Project(c, pattern.MustTree(root), []tax.Item{tax.LS("$2")})
}

func cloneAll(ns []*xmltree.Node) []*xmltree.Node {
	out := make([]*xmltree.Node, len(ns))
	for i, n := range ns {
		out[i] = n.Clone()
	}
	return out
}

func serializeAll(trees []*xmltree.Node) error {
	for _, tr := range trees {
		if err := xmltree.Serialize(os.Stdout, tr); err != nil {
			return err
		}
	}
	return nil
}
