// Benchmarks regenerating the paper's evaluation (Sec. 6) and the
// design-choice ablations DESIGN.md calls out. One benchmark exists per
// experiment row:
//
//	E1 (titles query):  BenchmarkE1DirectTitles (paper: 323.966s)
//	                    BenchmarkE1GroupByTitles (paper: 178.607s)
//	E2 (count query):   BenchmarkE2DirectCount (paper: 155.564s)
//	                    BenchmarkE2GroupByCount (paper: 23.033s)
//
// plus the bracketing baselines (nested-loops and batch direct plans,
// replicating grouping) and ablations (buffer pool size sweep, bulk vs
// incremental index loading, structural-join algorithms — the last in
// internal/sjoin). Absolute times are incomparable to the paper's
// Pentium III; the reproduced quantity is the *shape*: the groupby plan
// wins both experiments, and wins the count experiment by a much larger
// factor. Per-iteration buffer-pool fetch counts are reported as
// "fetches/op" — they are deterministic and machine-independent.
//
// The benchmark database defaults to 20,000 articles (~190k nodes) with
// a pool scaled to keep the paper's roughly 1:3 pool:data ratio. Set
// TIMBER_BENCH_ARTICLES to scale (440000 reproduces the paper's 4.6M
// nodes; expect a long setup).
package timber_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"timber/internal/bench"
	"timber/internal/dblpgen"
	"timber/internal/exec"
	"timber/internal/storage"
)

const defaultBenchArticles = 20_000

// benchPoolPages keeps pool:data near the paper's 32MB:100MB.
func benchPoolPages(articles int) int {
	// ~10.5 nodes/article, ~55 bytes/record => ~14 articles per 8 KiB
	// data page; a third of that in pool pages.
	pages := articles / 14 / 3
	if pages < 64 {
		pages = 64
	}
	return pages
}

func benchArticles() int {
	if s := os.Getenv("TIMBER_BENCH_ARTICLES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return defaultBenchArticles
}

var (
	benchOnce   sync.Once
	benchDB     *storage.DB
	benchErr    error
	benchTitles *bench.Query
	benchCount  *bench.Query
)

func setupBench(b *testing.B) (*storage.DB, *bench.Query, *bench.Query) {
	b.Helper()
	benchOnce.Do(func() {
		articles := benchArticles()
		benchDB, benchErr = bench.SetupDB(benchPoolPages(articles))
		if benchErr != nil {
			return
		}
		if _, benchErr = dblpgen.GenerateToDB(benchDB, dblpgen.Config{Articles: articles, Seed: 2002}); benchErr != nil {
			return
		}
		if benchTitles, benchErr = bench.BuildQuery(bench.Query1Text); benchErr != nil {
			return
		}
		benchCount, benchErr = bench.BuildQuery(bench.QueryCountText)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDB, benchTitles, benchCount
}

// runPlan benchmarks one physical strategy with a cold pool per
// iteration, reporting deterministic fetch counts alongside time.
func runPlan(b *testing.B, q *bench.Query, strat exec.Strategy, o exec.Options) {
	db, _, _ := setupBench(b)
	spec := q.Spec
	spec.Strategy = strat
	b.ReportAllocs()
	b.ResetTimer()
	var fetches uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := db.DropCache(); err != nil {
			b.Fatal(err)
		}
		db.ResetStats()
		b.StartTimer()
		res, err := exec.Run(db, spec, o)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Groups == 0 {
			b.Fatal("no groups")
		}
		fetches += db.Stats().Fetches
	}
	b.ReportMetric(float64(fetches)/float64(b.N), "fetches/op")
}

// --- E1: the Sec. 6 titles query -----------------------------------

func BenchmarkE1DirectTitles(b *testing.B) {
	_, titles, _ := setupBench(b)
	runPlan(b, titles, exec.StrategyDirect, exec.Options{})
}

func BenchmarkE1DirectNestedLoopsTitles(b *testing.B) {
	_, titles, _ := setupBench(b)
	runPlan(b, titles, exec.StrategyDirectNested, exec.Options{})
}

func BenchmarkE1DirectBatchTitles(b *testing.B) {
	_, titles, _ := setupBench(b)
	runPlan(b, titles, exec.StrategyDirectBatch, exec.Options{})
}

func BenchmarkE1GroupByTitles(b *testing.B) {
	_, titles, _ := setupBench(b)
	runPlan(b, titles, exec.StrategyGroupBy, exec.Options{})
}

// BenchmarkE1GroupByTitlesParallel sweeps the executor's worker bound
// over the titles groupby plan. Results are byte-identical at every
// setting; only wall time moves (and only on multi-core hosts — the
// fetch counts stay constant everywhere).
func BenchmarkE1GroupByTitlesParallel(b *testing.B) {
	_, titles, _ := setupBench(b)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			runPlan(b, titles, exec.StrategyGroupBy, exec.Options{Parallelism: p})
		})
	}
}

// --- E2: the Sec. 6 count query -------------------------------------

func BenchmarkE2DirectCount(b *testing.B) {
	_, _, count := setupBench(b)
	runPlan(b, count, exec.StrategyDirect, exec.Options{})
}

func BenchmarkE2DirectNestedLoopsCount(b *testing.B) {
	_, _, count := setupBench(b)
	runPlan(b, count, exec.StrategyDirectNested, exec.Options{})
}

func BenchmarkE2DirectBatchCount(b *testing.B) {
	_, _, count := setupBench(b)
	runPlan(b, count, exec.StrategyDirectBatch, exec.Options{})
}

func BenchmarkE2GroupByCount(b *testing.B) {
	_, _, count := setupBench(b)
	runPlan(b, count, exec.StrategyGroupBy, exec.Options{})
}

// --- A1: early replication vs identifier processing (Sec. 5.3) ------

func BenchmarkAblationReplicating(b *testing.B) {
	_, titles, _ := setupBench(b)
	runPlan(b, titles, exec.StrategyReplicating, exec.Options{})
}

func BenchmarkAblationIdentifier(b *testing.B) {
	_, titles, _ := setupBench(b)
	runPlan(b, titles, exec.StrategyGroupBy, exec.Options{})
}

// --- A2: buffer pool size sensitivity -------------------------------

// BenchmarkAblationPoolSize runs the groupby titles plan against the
// same data with pools from badly undersized to whole-database: the
// knee in fetch latency shows where the working set stops fitting.
func BenchmarkAblationPoolSize(b *testing.B) {
	const articles = 8000
	for _, poolMB := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("pool=%dMB", poolMB), func(b *testing.B) {
			db, err := bench.SetupDB(poolMB * 1024 * 1024 / 8192)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := dblpgen.GenerateToDB(db, dblpgen.Config{Articles: articles, Seed: 7}); err != nil {
				b.Fatal(err)
			}
			q, err := bench.BuildQuery(bench.Query1Text)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var reads uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := db.DropCache(); err != nil {
					b.Fatal(err)
				}
				db.ResetStats()
				b.StartTimer()
				if _, err := exec.Run(db, q.Spec, exec.Options{}); err != nil {
					b.Fatal(err)
				}
				reads += db.Stats().PhysicalReads
			}
			b.ReportMetric(float64(reads)/float64(b.N), "physreads/op")
		})
	}
}

// --- A4: bulk vs incremental index construction ----------------------

func BenchmarkLoadBulk(b *testing.B) {
	root, _ := dblpgen.Generate(dblpgen.Config{Articles: 2000, Seed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := storage.CreateTemp(storage.Options{PageSize: 8192, PoolPages: 2048})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.LoadDocument("d", root.Clone()); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

func BenchmarkLoadIncremental(b *testing.B) {
	root, _ := dblpgen.Generate(dblpgen.Config{Articles: 2000, Seed: 3})
	tiny, _ := dblpgen.Generate(dblpgen.Config{Articles: 1, Seed: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := storage.CreateTemp(storage.Options{PageSize: 8192, PoolPages: 2048})
		if err != nil {
			b.Fatal(err)
		}
		// A first tiny document forces the second load down the
		// incremental insert path.
		if _, err := db.LoadDocument("tiny", tiny.Clone()); err != nil {
			b.Fatal(err)
		}
		if _, err := db.LoadDocument("d", root.Clone()); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}
